package audit

import (
	"path/filepath"
	"testing"
)

const (
	testLat  = 40 // proxy-path latency for the window mirror
	testAddr = uint64(0x100000)
)

func testOpts() Options { return Options{ProxyLatency: testLat, Windows: true} }

// feed runs a stream through recorder+auditor (recorder first, as wired in
// the machine) and returns both.
func feed(t *testing.T, events []Event) (*FlightRecorder, *Auditor) {
	t.Helper()
	rec := NewFlightRecorder(0)
	aud := NewAuditor(testOpts())
	aud.AttachRecorder(rec)
	sink := Tee(rec, aud)
	for _, e := range events {
		sink.Tap(e)
	}
	return rec, aud
}

// legalStoreLife is the complete legal lifecycle of one persisted store:
// issue, commit, launch (data then marker), arrival, drain, redo write.
func legalStoreLife() []Event {
	return []Event{
		{Kind: EvStore, Core: 0, Cycle: 10, Addr: testAddr, Seq: 1, Region: 1, Val: 7, Val2: 0},
		{Kind: EvCommit, Core: 0, Cycle: 12, Region: 1},
		{Kind: EvLaunch, Core: 0, Cycle: 12, Addr: testAddr, Seq: 1, Val: 12},
		{Kind: EvLaunch, Core: 0, Cycle: 20, Region: 1, Val: 20, Flags: FlagBoundary},
		{Kind: EvBackArrive, Core: 0, Cycle: 52, Addr: testAddr, Seq: 1, Val: 52, Flags: FlagValid},
		{Kind: EvBackArrive, Core: 0, Cycle: 60, Region: 1, Val: 60, Flags: FlagBoundary},
		{Kind: EvDrain, Core: 0, Cycle: 76, Region: 1, Val: testAddr, Val2: testAddr, Count: 1},
		{Kind: EvDrainWrite, Core: 0, Cycle: 76, Addr: testAddr, Seq: 1, Region: 1, Val: 7, Flags: FlagApplied},
	}
}

func TestAuditorLegalLifecycle(t *testing.T) {
	_, aud := feed(t, legalStoreLife())
	if err := aud.Err(); err != nil {
		t.Fatalf("legal stream flagged: %v", err)
	}
	if aud.EventsAudited() != uint64(len(legalStoreLife())) {
		t.Fatalf("audited %d events, fed %d", aud.EventsAudited(), len(legalStoreLife()))
	}
}

// TestAuditorLegalWritebackThenStaleDrain pins the legitimate stale-drain
// case: a dirty writeback persists the line first, the back-end entry is
// invalidated on the scan... but an entry that already drained stale is
// correctly *dropped* by the sequence guard — applied=false must pass.
func TestAuditorLegalStaleDropped(t *testing.T) {
	events := []Event{
		{Kind: EvStore, Core: 0, Cycle: 10, Addr: testAddr, Seq: 1, Region: 1, Val: 7},
		{Kind: EvCommit, Core: 0, Cycle: 12, Region: 1},
		{Kind: EvLaunch, Core: 0, Cycle: 12, Addr: testAddr, Seq: 1, Val: 12},
		{Kind: EvLaunch, Core: 0, Cycle: 20, Region: 1, Val: 20, Flags: FlagBoundary},
		{Kind: EvBackArrive, Core: 0, Cycle: 52, Addr: testAddr, Seq: 1, Val: 52, Flags: FlagValid},
		{Kind: EvBackArrive, Core: 0, Cycle: 60, Region: 1, Val: 60, Flags: FlagBoundary},
		// A newer writeback lands before phase 2 books the region.
		{Kind: EvWriteback, Core: 0, Cycle: 70, Addr: testAddr, Seq: 9},
		{Kind: EvWritebackWord, Core: 0, Cycle: 70, Addr: testAddr, Seq: 9, Val: 11, Flags: FlagApplied},
		// The drain's redo write is correctly rejected by the guard.
		{Kind: EvDrain, Core: 0, Cycle: 90, Region: 1, Val: testAddr, Val2: testAddr, Count: 1},
		{Kind: EvDrainWrite, Core: 0, Cycle: 90, Addr: testAddr, Seq: 1, Region: 1, Val: 7},
	}
	_, aud := feed(t, events)
	if err := aud.Err(); err != nil {
		t.Fatalf("legal guarded drop flagged: %v", err)
	}
}

func TestAuditorCommitOrder(t *testing.T) {
	events := []Event{
		{Kind: EvCommit, Core: 0, Cycle: 5, Region: 1},
		{Kind: EvCommit, Core: 0, Cycle: 9, Region: 3}, // skipped region 2
	}
	_, aud := feed(t, events)
	vs := aud.Violations()
	if len(vs) == 0 || vs[0].Rule != "commit-order" {
		t.Fatalf("want commit-order violation, got %v", vs)
	}
}

func TestAuditorCrashRecoveryLegal(t *testing.T) {
	// A committed-but-undrained region is replayed; a second, uncommitted
	// store is undone. Execution resumes and the next region commits.
	const a2 = testAddr + 64
	events := []Event{
		{Kind: EvStore, Core: 0, Cycle: 10, Addr: testAddr, Seq: 1, Region: 1, Val: 7, Val2: 3},
		{Kind: EvCommit, Core: 0, Cycle: 12, Region: 1},
		// Open-region store whose effect a dirty writeback persisted early.
		{Kind: EvStore, Core: 0, Cycle: 14, Addr: a2, Seq: 2, Region: 2, Val: 8, Val2: 4},
		{Kind: EvWriteback, Core: 0, Cycle: 30, Addr: a2 &^ 63, Seq: 2},
		{Kind: EvWritebackWord, Core: 0, Cycle: 30, Addr: a2, Seq: 2, Val: 8, Flags: FlagApplied},
		{Kind: EvCrash, Cycle: 40},
		{Kind: EvRecoveryRedoWrite, Core: 0, Addr: testAddr, Seq: 1, Region: 1, Val: 7, Flags: FlagApplied},
		{Kind: EvRecoveryRedo, Core: 0, Region: 1},
		{Kind: EvRecoveryUndo, Core: 0, Addr: a2, Seq: 2, Val: 4, Flags: FlagApplied},
		{Kind: EvRecoveryDone, Count: 1},
		// Resumed execution re-runs the interrupted region.
		{Kind: EvStore, Core: 0, Cycle: 4, Addr: a2, Seq: 3, Region: 2, Val: 8, Val2: 4},
		{Kind: EvCommit, Core: 0, Cycle: 6, Region: 2},
	}
	_, aud := feed(t, events)
	if err := aud.Err(); err != nil {
		t.Fatalf("legal crash/recovery stream flagged: %v", err)
	}
}

func TestAuditorUndoGuardMismatch(t *testing.T) {
	events := []Event{
		{Kind: EvStore, Core: 0, Cycle: 10, Addr: testAddr, Seq: 5, Region: 1, Val: 7, Val2: 3},
		{Kind: EvCrash, Cycle: 40},
		// NVM never held any version >= FirstSeq, yet the undo claims it
		// rewrote NVM.
		{Kind: EvRecoveryUndo, Core: 0, Addr: testAddr, Seq: 5, Val: 3, Flags: FlagApplied},
	}
	_, aud := feed(t, events)
	vs := aud.Violations()
	if len(vs) == 0 || vs[0].Rule != "undo-guard-mismatch" {
		t.Fatalf("want undo-guard-mismatch, got %v", vs)
	}
}

func TestAuditorShadowDivergence(t *testing.T) {
	events := []Event{
		{Kind: EvWritebackWord, Core: 0, Cycle: 10, Addr: testAddr, Seq: 4, Val: 9, Flags: FlagApplied},
		// The NVM word claims a value the shadow never saw written.
		{Kind: EvNVMRead, Core: 0, Cycle: 50, Addr: testAddr, Seq: 4, Val: 10, Val2: 10},
	}
	_, aud := feed(t, events)
	vs := aud.Violations()
	if len(vs) == 0 || vs[0].Rule != "nvm-shadow-divergence" {
		t.Fatalf("want nvm-shadow-divergence, got %v", vs)
	}
}

func TestRecorderRingAndDigest(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		r.Tap(Event{Kind: EvStore, Seq: uint64(i)})
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("total %d dropped %d, want 10/6", r.Total(), r.Dropped())
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("kept %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if e.Seq != uint64(6+i) {
			t.Fatalf("event %d has seq %d, want %d (oldest-first order)", i, e.Seq, 6+i)
		}
	}
	// The digest covers all ten events: replaying only the kept four
	// produces a different digest.
	r2 := NewFlightRecorder(4)
	for _, e := range ev {
		r2.Tap(e)
	}
	if r.Digest() == r2.Digest() {
		t.Fatal("digest ignored evicted events")
	}
	// Identical full streams produce identical digests.
	r3 := NewFlightRecorder(2)
	for i := 0; i < 10; i++ {
		r3.Tap(Event{Kind: EvStore, Seq: uint64(i)})
	}
	if r.Digest() != r3.Digest() {
		t.Fatal("digest depends on ring capacity")
	}
}

func TestRecorderChainFor(t *testing.T) {
	rec, _ := feed(t, legalStoreLife())
	chain := rec.ChainFor(testAddr)
	// store, data launch, data arrival, drain (range covers the line),
	// drain write = 5 events on the line.
	if len(chain) != 5 {
		t.Fatalf("chain has %d events, want 5: %v", len(chain), chain)
	}
	if got := rec.ChainFor(testAddr + 4096); len(got) != 0 {
		t.Fatalf("unrelated line has %d chained events", len(got))
	}
	// Region chain: store, commit, marker launch, marker arrival, drain,
	// drain write (data launches/arrivals carry no region field).
	reg := rec.ChainForRegion(0, 1)
	if len(reg) != 6 {
		t.Fatalf("region chain has %d events, want 6: %v", len(reg), reg)
	}
}

func TestRunRecordRoundTrip(t *testing.T) {
	rec, aud := feed(t, legalStoreLife())
	r := NewRunRecord(rec, aud)
	r.Name = "unit"
	r.Fingerprint = "deadbeef"
	path := filepath.Join(t.TempDir(), "run.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRunRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Digest != r.Digest || back.Name != "unit" || back.EventsTotal != r.EventsTotal {
		t.Fatalf("round trip mangled header: %+v", back)
	}
	dec := back.DecodedEvents()
	if len(dec) != len(legalStoreLife()) {
		t.Fatalf("decoded %d events, want %d", len(dec), len(legalStoreLife()))
	}
	for i, e := range dec {
		if e != legalStoreLife()[i] {
			t.Fatalf("event %d mangled: got %+v want %+v", i, e, legalStoreLife()[i])
		}
	}
	if back.Audit == nil || !back.Audit.Enabled || back.Audit.Violations != 0 {
		t.Fatalf("audit summary mangled: %+v", back.Audit)
	}
}

func TestKindAndFlagNames(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		back, ok := KindFromString(k.String())
		if !ok || back != k {
			t.Fatalf("kind %d does not round-trip through %q", k, k.String())
		}
	}
	f := FlagMerged | FlagValid | FlagApplied
	if back := FlagsFromString(f.String()); back != f {
		t.Fatalf("flags %q round-tripped to %q", f, back)
	}
	if FlagsFromString("-") != 0 {
		t.Fatal("empty flags did not round-trip")
	}
}
