// Package audit is the event-sourced provenance layer for the memory
// system: the machine emits one Event for every per-line lifecycle step of
// the two-phase atomic store — store issued (undo/redo captured in the
// front-end proxy), entry launched on the proxy path, back-end arrival
// (with the monitoring-window verdict), region commit, dirty writeback at
// the memory controller, phase-2 drain to NVM, NVM read served, crash, and
// the recovery protocol's redo/undo applications.
//
// Two consumers sit behind the Sink interface:
//
//   - FlightRecorder: a bounded ring that can dump the full event chain for
//     any cache line and serialize a self-describing run record
//     (capri/run-record/v1 JSON — see record.go and cmd/capriinspect).
//   - Auditor: an online checker that maintains a per-line state machine and
//     asserts the safety invariants of paper Fig. 7 on every event (see
//     auditor.go and DESIGN.md §4e).
//
// The package is a leaf: it imports only the standard library, so the
// machine, recovery, and trace layers can all feed it without cycles.
package audit

import "fmt"

// Kind classifies a provenance event.
type Kind uint8

// Event kinds, in rough lifecycle order of a persisted store.
const (
	// EvStore: a store issued and allocated (or merged into) a front-end
	// proxy entry. Addr/Seq identify the store, Val is the redo image,
	// Val2 the undo image, Region the (open) region it belongs to.
	// FlagMerged marks same-region address merging.
	EvStore Kind = iota
	// EvCommit: a region boundary committed (the commit marker entered the
	// non-volatile front-end, or was elided for a store-free region).
	// Region is the committed region; FlagElided / FlagHalt annotate.
	EvCommit
	// EvLaunch: an entry departed the front-end onto the proxy path.
	// Val is the departure cycle. Data entries carry Addr/Seq; boundary
	// entries carry Region and FlagBoundary.
	EvLaunch
	// EvBackArrive: an entry arrived at the back-end proxy buffer.
	// Val is the true arrival cycle on the wire (which the monitoring
	// window compares against — not the cycle the buffer was serviced).
	// FlagValid reflects the redo valid-bit after the window check;
	// FlagWindowHit marks a window invalidation.
	EvBackArrive
	// EvWriteback: a dirty cache line reached the integrated memory
	// controller. Addr is the line address, Seq the newest store sequence
	// the line absorbed.
	EvWriteback
	// EvWritebackWord: one dirty word of that line propagated to NVM
	// through the sequence guard. Addr is the word, Val the architectural
	// value written, FlagApplied whether the guard let it through.
	EvWritebackWord
	// EvDrain: a region completed phase 2. Region identifies it; Val/Val2
	// are the lowest/highest drained word addresses and Count the number
	// of valid entries drained.
	EvDrain
	// EvDrainWrite: one valid redo entry of that region written to NVM.
	// Addr/Seq/Val(redo) identify the merged store; FlagApplied is the
	// sequence guard's verdict.
	EvDrainWrite
	// EvNVMRead: a load missed every volatile level and was served from
	// NVM. Seq/Val are the NVM word's sequence and value, Val2 the
	// architectural value the load actually returned.
	EvNVMRead
	// EvStall: the core stalled on a full front-end proxy.
	EvStall
	// EvCrash: power failure injected. Cycle is the machine makespan.
	EvCrash
	// EvRecoveryRedoWrite: recovery replayed one valid redo entry of a
	// committed region found in the proxy-buffer streams. Fields as
	// EvDrainWrite.
	EvRecoveryRedoWrite
	// EvRecoveryRedo: recovery finished replaying a committed region's
	// marker (checkpoints folded into the core's recovery record).
	EvRecoveryRedo
	// EvRecoveryUndo: recovery rolled back one uncommitted entry. Addr is
	// the word, Seq the entry's FirstSeq, Val the undo image restored,
	// FlagApplied whether NVM actually held a version >= FirstSeq.
	EvRecoveryUndo
	// EvRecoveryDone: the recovery protocol completed; Count is the number
	// of cores resumed or halted.
	EvRecoveryDone
	// EvTornWriteback: at a power failure, an in-flight dirty-line
	// writeback tore — this 8-byte word reverted to its pre-writeback NVM
	// image. Addr is the word, Val/Seq the restored (old) value and
	// sequence, Val2 the value the torn write had installed.
	EvTornWriteback
	// EvTornDrainWrite: at a power failure, a booked-but-incomplete phase-2
	// drain had already pushed this valid redo entry to NVM. Fields as
	// EvDrainWrite (FlagApplied is the sequence guard's verdict); the
	// entry remains in the battery-backed back-end for recovery to replay.
	EvTornDrainWrite
	// EvSync: a synchronizing store (atomic RMW, lock, unlock) executed.
	// Addr/Seq identify the store, Val the new value, Val2 the old, Region
	// the region the op commits atomically with. Emitted before the sealing
	// EvCommit — a sync with no commit following it is a protocol violation
	// (the cross-core detectability contract depends on that commit).
	EvSync

	// NumKinds is the number of event kinds.
	NumKinds
)

var kindNames = [NumKinds]string{
	EvStore:             "store",
	EvCommit:            "commit",
	EvLaunch:            "launch",
	EvBackArrive:        "arrive",
	EvWriteback:         "writeback",
	EvWritebackWord:     "wb-word",
	EvDrain:             "drain",
	EvDrainWrite:        "drain-write",
	EvNVMRead:           "nvm-read",
	EvStall:             "stall",
	EvCrash:             "crash",
	EvRecoveryRedoWrite: "rec-redo-write",
	EvRecoveryRedo:      "rec-redo",
	EvRecoveryUndo:      "rec-undo",
	EvRecoveryDone:      "rec-done",
	EvTornWriteback:     "torn-wb",
	EvTornDrainWrite:    "torn-drain",
	EvSync:              "sync",
}

// String returns the kind's wire name (stable: run records serialize it).
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString inverts String; ok is false for unknown names.
func KindFromString(s string) (Kind, bool) {
	for k := Kind(0); k < NumKinds; k++ {
		if kindNames[k] == s {
			return k, true
		}
	}
	return 0, false
}

// Flags annotate an event.
type Flags uint8

// Flag bits.
const (
	FlagMerged    Flags = 1 << iota // store merged into an existing entry
	FlagElided                      // boundary elided (store-free region)
	FlagBoundary                    // entry is a commit marker, not data
	FlagValid                       // redo valid-bit set
	FlagApplied                     // NVM write passed the sequence guard
	FlagWindowHit                   // monitoring window unset the valid-bit
	FlagHalt                        // final marker of a halted thread
	FlagNested                      // crash injected *during* recovery (fault model)
)

var flagNames = []struct {
	bit  Flags
	name string
}{
	{FlagMerged, "merged"},
	{FlagElided, "elided"},
	{FlagBoundary, "boundary"},
	{FlagValid, "valid"},
	{FlagApplied, "applied"},
	{FlagWindowHit, "window-hit"},
	{FlagHalt, "halt"},
	{FlagNested, "nested"},
}

// Has reports whether all bits of q are set.
func (f Flags) Has(q Flags) bool { return f&q == q }

// String renders the set flags as "a|b|c" ("-" when empty).
func (f Flags) String() string {
	if f == 0 {
		return "-"
	}
	s := ""
	for _, fn := range flagNames {
		if f&fn.bit != 0 {
			if s != "" {
				s += "|"
			}
			s += fn.name
		}
	}
	return s
}

// FlagsFromString inverts Flags.String.
func FlagsFromString(s string) Flags {
	var f Flags
	if s == "" || s == "-" {
		return 0
	}
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '|' {
			part := s[start:i]
			for _, fn := range flagNames {
				if fn.name == part {
					f |= fn.bit
				}
			}
			start = i + 1
		}
	}
	return f
}

// Event is one provenance record. Field meaning depends on Kind (see the
// kind constants); unused fields are zero. Events are plain values — the
// machine emits them synchronously at the exact point the modeled hardware
// state mutates, so a Sink observing the stream sees mutations in true
// order.
type Event struct {
	Kind   Kind
	Flags  Flags
	Core   int32
	Cycle  uint64
	Addr   uint64
	Seq    uint64
	Region uint64
	Val    uint64
	Val2   uint64
	Count  uint32
}

// Line returns the cache-line address of the event's word address.
func (e Event) Line() uint64 { return e.Addr &^ 63 }

// HasAddr reports whether the event's Addr field is meaningful.
func (e Event) HasAddr() bool {
	switch e.Kind {
	case EvStore, EvWriteback, EvWritebackWord, EvDrainWrite, EvNVMRead,
		EvRecoveryRedoWrite, EvRecoveryUndo, EvTornWriteback, EvTornDrainWrite,
		EvSync:
		return true
	case EvLaunch, EvBackArrive:
		return !e.Flags.Has(FlagBoundary)
	}
	return false
}

// String renders the event as one grep-friendly line.
func (e Event) String() string {
	s := fmt.Sprintf("%-14s core=%d cycle=%d", e.Kind, e.Core, e.Cycle)
	switch e.Kind {
	case EvStore:
		s += fmt.Sprintf(" addr=%#x seq=%d region=%d redo=%d undo=%d", e.Addr, e.Seq, e.Region, e.Val, e.Val2)
	case EvCommit:
		s += fmt.Sprintf(" region=%d", e.Region)
	case EvLaunch:
		if e.Flags.Has(FlagBoundary) {
			s += fmt.Sprintf(" region=%d depart=%d", e.Region, e.Val)
		} else {
			s += fmt.Sprintf(" addr=%#x seq=%d depart=%d", e.Addr, e.Seq, e.Val)
		}
	case EvBackArrive:
		if e.Flags.Has(FlagBoundary) {
			s += fmt.Sprintf(" region=%d arrives=%d", e.Region, e.Val)
		} else {
			s += fmt.Sprintf(" addr=%#x seq=%d arrives=%d", e.Addr, e.Seq, e.Val)
		}
	case EvWriteback:
		s += fmt.Sprintf(" line=%#x seq=%d", e.Addr, e.Seq)
	case EvWritebackWord:
		s += fmt.Sprintf(" addr=%#x seq=%d val=%d", e.Addr, e.Seq, e.Val)
	case EvDrain:
		s += fmt.Sprintf(" region=%d entries=%d lo=%#x hi=%#x", e.Region, e.Count, e.Val, e.Val2)
	case EvDrainWrite, EvRecoveryRedoWrite:
		s += fmt.Sprintf(" addr=%#x seq=%d region=%d redo=%d", e.Addr, e.Seq, e.Region, e.Val)
	case EvNVMRead:
		s += fmt.Sprintf(" addr=%#x nvmseq=%d nvmval=%d archval=%d", e.Addr, e.Seq, e.Val, e.Val2)
	case EvRecoveryRedo:
		s += fmt.Sprintf(" region=%d", e.Region)
	case EvRecoveryUndo:
		s += fmt.Sprintf(" addr=%#x firstseq=%d undo=%d", e.Addr, e.Seq, e.Val)
	case EvRecoveryDone:
		s += fmt.Sprintf(" cores=%d", e.Count)
	case EvTornWriteback:
		s += fmt.Sprintf(" addr=%#x restored=%d seq=%d torn=%d", e.Addr, e.Val, e.Seq, e.Val2)
	case EvTornDrainWrite:
		s += fmt.Sprintf(" addr=%#x seq=%d region=%d redo=%d", e.Addr, e.Seq, e.Region, e.Val)
	case EvSync:
		s += fmt.Sprintf(" addr=%#x seq=%d region=%d new=%d old=%d", e.Addr, e.Seq, e.Region, e.Val, e.Val2)
	}
	if e.Flags != 0 {
		s += " [" + e.Flags.String() + "]"
	}
	return s
}

// Sink consumes the event stream. Implementations must not retain the
// event past the call (it is a value, so copies are fine).
type Sink interface {
	Tap(Event)
}

// tee fans one stream out to several sinks in order.
type tee []Sink

func (t tee) Tap(e Event) {
	for _, s := range t {
		s.Tap(e)
	}
}

// Tee returns a Sink forwarding every event to each given sink in order.
// Nil sinks are skipped. Put a FlightRecorder before an Auditor so a
// violation's event chain includes the offending event itself.
func Tee(sinks ...Sink) Sink {
	var t tee
	for _, s := range sinks {
		if s != nil {
			t = append(t, s)
		}
	}
	if len(t) == 1 {
		return t[0]
	}
	return t
}
