package audit

import "testing"

// These are the seeded protocol mutations of the acceptance criteria: each
// corrupts one step of the Fig. 7 protocol in an otherwise-legal event
// stream and must produce a reported violation with a non-empty per-line
// event chain. (The machine-level complement — the unmutated crash sweep
// and benchmarks auditing clean — lives in the recovery and machine
// packages and `make audit`.)

func requireViolation(t *testing.T, aud *Auditor, rule string) Violation {
	t.Helper()
	vs := aud.Violations()
	if len(vs) == 0 {
		t.Fatalf("mutation not detected: no violations")
	}
	v := vs[0]
	if v.Rule != rule {
		t.Fatalf("first violation rule %q, want %q (%s)", v.Rule, rule, v.Detail)
	}
	if len(v.Chain) == 0 {
		t.Fatalf("violation %q has an empty per-line event chain", v.Rule)
	}
	if aud.Err() == nil {
		t.Fatal("Err() nil despite violation")
	}
	return v
}

// TestMutationDroppedCommitMarker: mutation (a) — the region's commit
// marker is dropped (never commits, never travels), yet the back-end
// drains the region's data anyway. The drain must be flagged as preceding
// its commit marker.
func TestMutationDroppedCommitMarker(t *testing.T) {
	events := []Event{
		{Kind: EvStore, Core: 0, Cycle: 10, Addr: testAddr, Seq: 1, Region: 1, Val: 7},
		// MUTATION: no EvCommit / marker launch / marker arrival for region 1.
		{Kind: EvLaunch, Core: 0, Cycle: 12, Addr: testAddr, Seq: 1, Val: 12},
		{Kind: EvBackArrive, Core: 0, Cycle: 52, Addr: testAddr, Seq: 1, Val: 52, Flags: FlagValid},
		{Kind: EvDrain, Core: 0, Cycle: 76, Region: 1, Val: testAddr, Val2: testAddr, Count: 1},
		{Kind: EvDrainWrite, Core: 0, Cycle: 76, Addr: testAddr, Seq: 1, Region: 1, Val: 7, Flags: FlagApplied},
	}
	_, aud := feed(t, events)
	v := requireViolation(t, aud, "drain-before-commit")
	if v.Event.Kind != EvDrain {
		t.Fatalf("violation anchored to %s, want %s", v.Event.Kind, EvDrain)
	}
	// The chain must include the store whose durability was corrupted.
	found := false
	for _, e := range v.Chain {
		if e.Kind == EvStore && e.Addr == testAddr {
			found = true
		}
	}
	if !found {
		t.Fatalf("chain lacks the region's store: %v", v.Chain)
	}
}

// TestMutationSkippedValidBitClear: mutation (b) — a dirty writeback
// persists the line with a newer sequence, the back-end scan that should
// unset the entry's redo valid-bit is skipped, and phase 2 persists the
// stale redo over the newer data. The sequence-guard shadow must flag the
// stale redo write.
func TestMutationSkippedValidBitClear(t *testing.T) {
	events := []Event{
		{Kind: EvStore, Core: 0, Cycle: 10, Addr: testAddr, Seq: 5, Region: 1, Val: 7},
		{Kind: EvCommit, Core: 0, Cycle: 12, Region: 1},
		{Kind: EvLaunch, Core: 0, Cycle: 12, Addr: testAddr, Seq: 5, Val: 12},
		{Kind: EvLaunch, Core: 0, Cycle: 20, Region: 1, Val: 20, Flags: FlagBoundary},
		{Kind: EvBackArrive, Core: 0, Cycle: 52, Addr: testAddr, Seq: 5, Val: 52, Flags: FlagValid},
		{Kind: EvBackArrive, Core: 0, Cycle: 60, Region: 1, Val: 60, Flags: FlagBoundary},
		// A newer writeback (seq 10) persists the line...
		{Kind: EvWriteback, Core: 0, Cycle: 70, Addr: testAddr, Seq: 10},
		{Kind: EvWritebackWord, Core: 0, Cycle: 70, Addr: testAddr, Seq: 10, Val: 11, Flags: FlagApplied},
		// MUTATION: the scan skipped the valid-bit clear AND the stale redo
		// write claims it was applied over the newer data.
		{Kind: EvDrain, Core: 0, Cycle: 90, Region: 1, Val: testAddr, Val2: testAddr, Count: 1},
		{Kind: EvDrainWrite, Core: 0, Cycle: 90, Addr: testAddr, Seq: 5, Region: 1, Val: 7, Flags: FlagApplied},
	}
	_, aud := feed(t, events)
	v := requireViolation(t, aud, "seq-guard-mismatch")
	if v.Event.Kind != EvDrainWrite {
		t.Fatalf("violation anchored to %s, want %s", v.Event.Kind, EvDrainWrite)
	}
}

// TestMutationSuppressedWindowNotification: mutation (c) — a dirty
// writeback reaches the controller but the monitoring-window notification
// is suppressed, so an in-flight older entry arrives with its valid-bit
// still set inside what should be a live window.
func TestMutationSuppressedWindowNotification(t *testing.T) {
	events := []Event{
		{Kind: EvStore, Core: 0, Cycle: 10, Addr: testAddr, Seq: 5, Region: 1, Val: 7},
		{Kind: EvCommit, Core: 0, Cycle: 12, Region: 1},
		{Kind: EvLaunch, Core: 0, Cycle: 90, Addr: testAddr, Seq: 5, Val: 90},
		// Writeback at cycle 100: window over [100, 100+latency] for seqs <= 10.
		{Kind: EvWriteback, Core: 0, Cycle: 100, Addr: testAddr, Seq: 10},
		{Kind: EvWritebackWord, Core: 0, Cycle: 100, Addr: testAddr, Seq: 10, Val: 11, Flags: FlagApplied},
		// MUTATION: the entry arrives at cycle 110 — inside the window, with
		// an older sequence — but the suppressed notification left it valid.
		{Kind: EvBackArrive, Core: 0, Cycle: 110, Addr: testAddr, Seq: 5, Val: 110, Flags: FlagValid},
	}
	_, aud := feed(t, events)
	v := requireViolation(t, aud, "window-missed-invalidation")
	if v.Event.Kind != EvBackArrive {
		t.Fatalf("violation anchored to %s, want %s", v.Event.Kind, EvBackArrive)
	}
	// Control: with the notification delivered, the same arrival invalid is
	// clean.
	fixed := append([]Event(nil), events...)
	last := &fixed[len(fixed)-1]
	last.Flags = FlagWindowHit // invalid on arrival, window hit
	_, aud2 := feed(t, fixed)
	if err := aud2.Err(); err != nil {
		t.Fatalf("control stream flagged: %v", err)
	}
}
