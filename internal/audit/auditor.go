package audit

import (
	"fmt"
	"strings"
)

// Options configure the Auditor's model of the machine it is checking.
type Options struct {
	// ProxyLatency is the proxy path latency in cycles — the monitoring
	// window mirror needs it to reproduce expiry times exactly.
	ProxyLatency uint64
	// Windows is true when the §5.3.2 machinery is active (Capri mode
	// without the NoScanInvalidate ablation): the auditor then mirrors the
	// monitoring window and checks arrival valid-bits against it.
	Windows bool
}

// Violation is one detected protocol violation.
type Violation struct {
	Rule   string  // stable rule name (see DESIGN.md §4e)
	Detail string  // human-readable specifics
	Index  uint64  // 0-based position of the offending event in the stream
	Event  Event   // the offending event
	Chain  []Event // per-line provenance for the offending line (recorder attached)
}

// Error renders the violation with its event chain.
func (v Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: rule %s violated at event %d: %s\n  event: %s",
		v.Rule, v.Index, v.Detail, v.Event)
	if len(v.Chain) > 0 {
		fmt.Fprintf(&b, "\n  event chain (%d events):", len(v.Chain))
		for _, e := range v.Chain {
			fmt.Fprintf(&b, "\n    %s", e)
		}
	}
	return b.String()
}

// storeRec is the auditor's record of one issued store: the provenance an
// entry's drained redo (and undone undo) must match.
type storeRec struct {
	core   int32
	addr   uint64
	region uint64
	undo   uint64
	redo   uint64
	sync   bool // store is a synchronizing op (atomic RMW, lock, unlock)
}

type seqVal struct {
	seq       uint64
	val       uint64
	core      int32
	committed bool // version persisted by a drain-family write of a committed region
}

type winEntry struct {
	expiry uint64
	seq    uint64
}

// maxKeptViolations bounds the stored violation list; further violations
// are counted but not retained (the first one is what matters — later ones
// are usually cascade noise from the same root cause).
const maxKeptViolations = 16

// Auditor is an online checker of the Fig. 7 protocol invariants. It
// maintains a shadow of every piece of persistence-relevant state the
// machine mutates — the NVM word versions, the monitoring windows, the
// per-core commit/drain watermarks, and the set of issued-but-undrained
// stores — and asserts on every event that the machine's behavior matches
// what the protocol allows:
//
//   - commit-order: per-core region commits are strictly consecutive.
//   - drain-before-commit / drain-order: a region drains only after its
//     commit marker, and drains are monotone per core.
//   - drain-unknown-store / drain-wrong-region: every drained redo matches
//     an issued store (same address, sequence, and value) of exactly the
//     drained region — i.e. every drained redo has a matching undo.
//   - seq-guard-mismatch: every NVM write's applied/dropped outcome equals
//     the sequence-guard prediction from the shadow; in particular a stale
//     redo must never persist over newer data.
//   - window-missed-invalidation / window-spurious-invalidation: a data
//     entry arriving at the back-end inside a live monitoring window whose
//     sequence is not newer must have its valid-bit unset, and only then.
//   - stale-nvm-read / nvm-shadow-divergence: a load served from NVM may
//     return data older than the architectural value only while a pending
//     (undrained) store explains the gap, and the NVM word must equal the
//     shadow rebuilt from the event stream.
//   - replay-order / replay-drained-region / replay-uncommitted-region:
//     recovery replays committed regions in commit order, never a region
//     that already drained, never one that never committed.
//   - undo-unknown-store / undo-open-region / undo-guard-mismatch:
//     recovery rolls back exactly the interrupted region's stores, with the
//     undo images captured at issue, under the FirstSeq guard.
//   - sync-unordered-commit / sync-unknown-store: a synchronizing store
//     (atomic RMW, lock, unlock) commits atomically with its own region —
//     the very next event the issuing core may contribute after the sync is
//     that region's commit marker; a store slipping in first means the sync
//     is still rollback-able while other cores can already observe it.
//   - sync-persist-order: applied NVM persists of synchronizing stores to
//     one word must follow execution (sequence) order — concurrent per-core
//     drains must not reorder same-line atomics on their way to NVM.
//   - line-version-chain: a committed region's drain-family write must never
//     clobber a newer committed version another core persisted — the
//     cross-core diagnosis layered on seq-guard-mismatch.
//   - undo-clobbers-committed: recovery's rollback of one core's
//     uncommitted store must never destroy a committed NVM version another
//     core persisted (the cross-core detectability contract at crash).
//   - torn-outside-crash / torn-ownership / torn-forward /
//     torn-uncommitted-region / torn-drained-region /
//     nested-crash-outside-recovery: the fault model's legality rules — a
//     write may tear only at a power failure, a torn writeback may only
//     revert a word the torn write still owns (backward in version order),
//     a torn drain prefix may only belong to the committed-undrained
//     region, and a nested crash may only occur inside recovery. After a
//     nested crash the replay watermarks reset while the crash watermarks
//     stand, so the sequence-guard rules verify the restarted recovery's
//     idempotence exactly.
//
// The auditor must observe the machine from birth (attach the tap before
// the first instruction) and, for crash tests, stay attached across
// Crash/Recover so its shadow state carries over. Events arriving for a
// recovery the auditor did not see the crash of are ignored.
type Auditor struct {
	opt Options
	rec *FlightRecorder // optional; fills Violation.Chain

	idx     uint64 // events consumed
	lastSeq uint64 // newest store sequence seen

	nvm    map[uint64]seqVal   // shadow NVM word versions
	window map[uint64]winEntry // monitoring-window mirror (identical across cores)

	stores map[uint64]*storeRec // pending (undrained) stores by global sequence
	byAddr map[uint64][]uint64  // word address -> pending store sequences
	order  map[int32][]uint64   // per-core pending sequences in issue order

	lastCommit map[int32]uint64
	lastDrain  map[int32]uint64

	pendingSync map[int32]uint64  // core -> region whose sync awaits its sealing commit
	syncPersist map[uint64]uint64 // word addr -> newest applied sync-store sequence

	crashed       bool
	commitAtCrash map[int32]uint64
	drainAtCrash  map[int32]uint64
	lastReplay    map[int32]uint64

	violations []Violation
	total      uint64 // all violations, including unretained ones
}

// NewAuditor returns an online auditor with the given model options.
func NewAuditor(opt Options) *Auditor {
	return &Auditor{
		opt:        opt,
		nvm:        map[uint64]seqVal{},
		window:     map[uint64]winEntry{},
		stores:     map[uint64]*storeRec{},
		byAddr:     map[uint64][]uint64{},
		order:      map[int32][]uint64{},
		lastCommit: map[int32]uint64{},
		lastDrain:  map[int32]uint64{},

		pendingSync: map[int32]uint64{},
		syncPersist: map[uint64]uint64{},
	}
}

// AttachRecorder links a flight recorder whose retained events fill each
// violation's per-line chain. Tee the recorder *before* the auditor so the
// chain includes the offending event.
func (a *Auditor) AttachRecorder(r *FlightRecorder) { a.rec = r }

// Violations returns the retained violations in detection order.
func (a *Auditor) Violations() []Violation { return a.violations }

// ViolationCount returns the total number of violations detected,
// including ones beyond the retention cap.
func (a *Auditor) ViolationCount() uint64 { return a.total }

// Err returns nil when no invariant was violated, or an error describing
// the first violation (with its event chain).
func (a *Auditor) Err() error {
	if len(a.violations) == 0 {
		return nil
	}
	v := a.violations[0]
	if a.total > 1 {
		return fmt.Errorf("%s\n  (+%d further violations)", v.Error(), a.total-1)
	}
	return fmt.Errorf("%s", v.Error())
}

// EventsAudited returns the number of events consumed.
func (a *Auditor) EventsAudited() uint64 { return a.idx }

func (a *Auditor) violate(e Event, rule, format string, args ...interface{}) {
	a.total++
	if len(a.violations) >= maxKeptViolations {
		return
	}
	v := Violation{Rule: rule, Detail: fmt.Sprintf(format, args...), Index: a.idx, Event: e}
	if a.rec != nil {
		if e.HasAddr() {
			v.Chain = a.rec.ChainFor(e.Line())
		} else {
			v.Chain = a.rec.ChainForRegion(e.Core, e.Region)
		}
	}
	a.violations = append(a.violations, v)
}

func (a *Auditor) shadow(addr uint64) seqVal { return a.nvm[addr] }

// Tap consumes one event, updating the shadow model and checking the
// invariants that fire on it.
func (a *Auditor) Tap(e Event) {
	switch e.Kind {
	case EvStore:
		a.onStore(e)
	case EvCommit:
		a.onCommit(e)
	case EvLaunch:
		a.onLaunch(e)
	case EvBackArrive:
		a.onArrive(e)
	case EvWritebackWord:
		a.onWritebackWord(e)
	case EvDrain:
		a.onDrain(e)
	case EvDrainWrite:
		a.onDrainWrite(e)
	case EvNVMRead:
		a.onNVMRead(e)
	case EvCrash:
		a.onCrash(e)
	case EvRecoveryRedoWrite:
		a.onReplayWrite(e)
	case EvRecoveryRedo:
		a.onReplayMarker(e)
	case EvRecoveryUndo:
		a.onUndo(e)
	case EvRecoveryDone:
		a.onRecoveryDone(e)
	case EvTornWriteback:
		a.onTornWriteback(e)
	case EvTornDrainWrite:
		a.onTornDrainWrite(e)
	case EvSync:
		a.onSync(e)
	}
	a.idx++
}

func (a *Auditor) onStore(e Event) {
	if e.Seq <= a.lastSeq {
		a.violate(e, "store-seq-monotone", "store sequence %d not above previous %d", e.Seq, a.lastSeq)
	}
	a.lastSeq = e.Seq
	open := a.lastCommit[e.Core] + 1
	if e.Region != open {
		a.violate(e, "store-open-region", "store tagged region %d, core %d's open region is %d", e.Region, e.Core, open)
	}
	if p, ok := a.pendingSync[e.Core]; ok {
		a.violate(e, "sync-unordered-commit",
			"core %d issued store addr %#x seq %d before region %d's sync sealed its commit",
			e.Core, e.Addr, e.Seq, p)
		delete(a.pendingSync, e.Core) // one violation per dropped commit
	}
	a.stores[e.Seq] = &storeRec{core: e.Core, addr: e.Addr, region: e.Region, undo: e.Val2, redo: e.Val}
	a.byAddr[e.Addr] = append(a.byAddr[e.Addr], e.Seq)
	a.order[e.Core] = append(a.order[e.Core], e.Seq)
}

// onSync records a synchronizing store. Its data entry (EvStore, same
// sequence) precedes it and its sealing commit marker must be the issuing
// core's very next contribution to the stream — tracked via pendingSync.
func (a *Auditor) onSync(e Event) {
	if s := a.stores[e.Seq]; s != nil && s.core == e.Core && s.addr == e.Addr {
		s.sync = true
	} else {
		a.violate(e, "sync-unknown-store",
			"sync addr %#x seq %d matches no issued store of core %d", e.Addr, e.Seq, e.Core)
	}
	a.pendingSync[e.Core] = e.Region
}

func (a *Auditor) onCommit(e Event) {
	if want := a.lastCommit[e.Core] + 1; e.Region != want {
		a.violate(e, "commit-order", "core %d committed region %d, expected %d", e.Core, e.Region, want)
	}
	if e.Region > a.lastCommit[e.Core] {
		a.lastCommit[e.Core] = e.Region
	}
	if p, ok := a.pendingSync[e.Core]; ok && e.Region >= p {
		delete(a.pendingSync, e.Core)
	}
}

func (a *Auditor) onLaunch(e Event) {
	if e.Flags.Has(FlagBoundary) {
		if e.Region > a.lastCommit[e.Core] {
			a.violate(e, "launch-before-commit", "core %d launched marker for region %d above commit watermark %d", e.Core, e.Region, a.lastCommit[e.Core])
		}
		return
	}
	if s := a.stores[e.Seq]; s == nil || s.core != e.Core || s.addr != e.Addr {
		a.violate(e, "launch-unknown-store", "launched entry addr %#x seq %d matches no issued store", e.Addr, e.Seq)
	}
}

func (a *Auditor) onArrive(e Event) {
	if e.Flags.Has(FlagBoundary) {
		return
	}
	hit := false
	if a.opt.Windows {
		if w, ok := a.window[e.Addr]; ok && e.Val <= w.expiry && e.Seq <= w.seq {
			hit = true
		}
	}
	valid := e.Flags.Has(FlagValid)
	if hit && valid {
		w := a.window[e.Addr]
		a.violate(e, "window-missed-invalidation",
			"entry addr %#x seq %d arrived valid at cycle %d inside live window (expiry %d, wb seq %d)",
			e.Addr, e.Seq, e.Val, w.expiry, w.seq)
	}
	if !hit && !valid {
		a.violate(e, "window-spurious-invalidation",
			"entry addr %#x seq %d arrived invalid at cycle %d with no matching monitoring window",
			e.Addr, e.Seq, e.Val)
	}
}

func (a *Auditor) onWritebackWord(e Event) {
	a.checkGuard(e, "writeback", false)
	if a.opt.Windows {
		a.noteWriteback(e.Addr, e.Seq, e.Cycle)
	}
}

// noteWriteback mirrors proxy.Path.NoteWriteback exactly — including the
// refresh rule and the opportunistic prune — so the mirror stays identical
// to every core's window map (all cores receive identical calls).
func (a *Auditor) noteWriteback(addr, seq, now uint64) {
	w, ok := a.window[addr]
	if !ok || w.seq < seq || w.expiry < now+a.opt.ProxyLatency {
		a.window[addr] = winEntry{expiry: now + a.opt.ProxyLatency, seq: seq}
	}
	if len(a.window) > 4096 {
		for ad, we := range a.window {
			if we.expiry < now {
				delete(a.window, ad)
			}
		}
	}
}

// checkGuard asserts the NVM write's applied/dropped outcome matches the
// sequence-guard prediction and folds the write into the shadow. committed
// marks drain-family writes (the version they install is a committed
// region's) — the cross-core rules key off it.
func (a *Auditor) checkGuard(e Event, what string, committed bool) {
	sv := a.shadow(e.Addr)
	expected := e.Seq > sv.seq
	applied := e.Flags.Has(FlagApplied)
	if applied != expected {
		if applied {
			a.violate(e, "seq-guard-mismatch",
				"stale %s persisted: addr %#x seq %d overwrote shadow seq %d",
				what, e.Addr, e.Seq, sv.seq)
		} else {
			a.violate(e, "seq-guard-mismatch",
				"%s addr %#x seq %d dropped though shadow holds older seq %d",
				what, e.Addr, e.Seq, sv.seq)
		}
	}
	if applied && committed && sv.committed && e.Seq < sv.seq && e.Core != sv.core {
		a.violate(e, "line-version-chain",
			"core %d's %s addr %#x seq %d clobbered core %d's newer committed version (seq %d) — concurrent per-core drains broke the line's version chain",
			e.Core, what, e.Addr, e.Seq, sv.core, sv.seq)
	}
	if applied {
		a.nvm[e.Addr] = seqVal{seq: e.Seq, val: e.Val, core: e.Core, committed: committed}
	}
}

// checkSyncPersist asserts that applied NVM persists of synchronizing stores
// to one word occur in execution (sequence) order: same-line atomics must
// reach NVM in the order they executed, whichever core's drain carries them.
func (a *Auditor) checkSyncPersist(e Event) {
	s := a.stores[e.Seq]
	if s == nil || !s.sync || !e.Flags.Has(FlagApplied) {
		return
	}
	if last := a.syncPersist[e.Addr]; e.Seq < last {
		a.violate(e, "sync-persist-order",
			"sync store addr %#x seq %d persisted after newer sync seq %d — atomic persist order diverged from execution order",
			e.Addr, e.Seq, last)
		return
	}
	a.syncPersist[e.Addr] = e.Seq
}

func (a *Auditor) onDrain(e Event) {
	if e.Region <= a.lastDrain[e.Core] && a.lastDrain[e.Core] != 0 {
		a.violate(e, "drain-order", "core %d drained region %d after region %d", e.Core, e.Region, a.lastDrain[e.Core])
	}
	if e.Region > a.lastCommit[e.Core] {
		a.violate(e, "drain-before-commit",
			"core %d drained region %d before its commit marker (commit watermark %d)",
			e.Core, e.Region, a.lastCommit[e.Core])
	}
	a.pruneBelow(e.Core, e.Region)
	if e.Region > a.lastDrain[e.Core] {
		a.lastDrain[e.Core] = e.Region
	}
}

// pruneBelow retires pending stores of regions strictly below r on one core
// (their region has fully drained; per-core store order is region-ordered,
// so the per-core issue queue can be popped from the front).
func (a *Auditor) pruneBelow(core int32, r uint64) {
	q := a.order[core]
	for len(q) > 0 {
		s := a.stores[q[0]]
		if s == nil {
			q = q[1:]
			continue
		}
		if s.region >= r {
			break
		}
		a.dropStore(q[0], s)
		q = q[1:]
	}
	a.order[core] = q
}

func (a *Auditor) dropStore(seq uint64, s *storeRec) {
	delete(a.stores, seq)
	if seqs, ok := a.byAddr[s.addr]; ok {
		for i, q := range seqs {
			if q == seq {
				seqs = append(seqs[:i], seqs[i+1:]...)
				break
			}
		}
		if len(seqs) == 0 {
			delete(a.byAddr, s.addr)
		} else {
			a.byAddr[s.addr] = seqs
		}
	}
}

// matchStore checks a drained/replayed redo against the issued-store record.
func (a *Auditor) matchStore(e Event, rule string) {
	s := a.stores[e.Seq]
	if s == nil || s.core != e.Core || s.addr != e.Addr || s.redo != e.Val {
		a.violate(e, rule+"-unknown-store",
			"redo addr %#x seq %d val %d matches no issued store of core %d",
			e.Addr, e.Seq, e.Val, e.Core)
		return
	}
	if s.region != e.Region {
		a.violate(e, rule+"-wrong-region",
			"redo addr %#x seq %d issued in region %d, drained with region %d",
			e.Addr, e.Seq, s.region, e.Region)
	}
}

func (a *Auditor) onDrainWrite(e Event) {
	a.matchStore(e, "drain")
	a.checkSyncPersist(e)
	a.checkGuard(e, "redo", true)
}

func (a *Auditor) onNVMRead(e Event) {
	if sv := a.shadow(e.Addr); sv.seq != e.Seq || sv.val != e.Val {
		a.violate(e, "nvm-shadow-divergence",
			"NVM word %#x is (val %d, seq %d), shadow predicts (val %d, seq %d)",
			e.Addr, e.Val, e.Seq, sv.val, sv.seq)
	}
	if e.Val != e.Val2 {
		// The architectural and persisted values differ: legal only while an
		// issued-but-undrained store newer than the NVM version explains it.
		explained := false
		for _, seq := range a.byAddr[e.Addr] {
			if seq > e.Seq {
				explained = true
				break
			}
		}
		if !explained {
			a.violate(e, "stale-nvm-read",
				"NVM read of %#x returned seq %d val %d, architectural val %d, with no pending store explaining the gap",
				e.Addr, e.Seq, e.Val, e.Val2)
		}
	}
}

func (a *Auditor) onCrash(e Event) {
	if e.Flags.Has(FlagNested) {
		if !a.crashed {
			a.violate(e, "nested-crash-outside-recovery",
				"crash flagged nested with no recovery in progress")
			return
		}
		// Power failed *during* recovery. The battery-backed streams are
		// unchanged, so the crash watermarks stand; only replay progress
		// resets — the restarted recovery replays the streams from the top,
		// and the sequence-guard rules verify its idempotence exactly.
		a.lastReplay = map[int32]uint64{}
		return
	}
	a.crashed = true
	a.commitAtCrash = copyMap(a.lastCommit)
	a.drainAtCrash = copyMap(a.lastDrain)
	a.lastReplay = map[int32]uint64{}
	// Execution stopped: a sync awaiting its commit cannot misorder anymore.
	a.pendingSync = map[int32]uint64{}
}

// onTornWriteback checks a torn dirty-line writeback: tearing may only
// happen at a power failure, may only revert a word the torn write still
// owns, and may only move the word backward in version order.
func (a *Auditor) onTornWriteback(e Event) {
	if !a.crashed {
		a.violate(e, "torn-outside-crash",
			"torn writeback word %#x with no power failure in progress", e.Addr)
		return
	}
	sv := a.shadow(e.Addr)
	if sv.val != e.Val2 {
		a.violate(e, "torn-ownership",
			"torn writeback reverted word %#x holding val %d (seq %d), but the torn write installed %d — a later write owns the word",
			e.Addr, sv.val, sv.seq, e.Val2)
	}
	if e.Seq > sv.seq {
		a.violate(e, "torn-forward",
			"torn writeback moved word %#x forward: restored seq %d above shadow seq %d",
			e.Addr, e.Seq, sv.seq)
	}
	a.nvm[e.Addr] = seqVal{seq: e.Seq, val: e.Val, core: e.Core}
}

// onTornDrainWrite checks a torn phase-2 drain prefix: only a committed but
// not-yet-drained region can have a drain in flight, every pre-applied redo
// must match an issued store of that region, and the sequence guard's
// verdict must match the shadow.
func (a *Auditor) onTornDrainWrite(e Event) {
	if !a.crashed {
		a.violate(e, "torn-outside-crash",
			"torn drain write %#x with no power failure in progress", e.Addr)
		return
	}
	a.matchStore(e, "torn-drain")
	if e.Region > a.commitAtCrash[e.Core] {
		a.violate(e, "torn-uncommitted-region",
			"torn drain pushed redo of region %d above core %d's commit watermark %d",
			e.Region, e.Core, a.commitAtCrash[e.Core])
	}
	if dr := a.drainAtCrash[e.Core]; dr != 0 && e.Region <= dr {
		a.violate(e, "torn-drained-region",
			"torn drain pushed redo of region %d, already drained through %d",
			e.Region, dr)
	}
	a.checkSyncPersist(e)
	a.checkGuard(e, "torn drain", true)
}

func (a *Auditor) onReplayWrite(e Event) {
	if !a.crashed {
		return
	}
	a.matchStore(e, "replay")
	if e.Region <= a.drainAtCrash[e.Core] && a.drainAtCrash[e.Core] != 0 {
		a.violate(e, "replay-drained-region", "recovery replayed redo of region %d, already drained through %d", e.Region, a.drainAtCrash[e.Core])
	}
	a.checkSyncPersist(e)
	a.checkGuard(e, "recovery redo", true)
}

func (a *Auditor) onReplayMarker(e Event) {
	if !a.crashed {
		return
	}
	if e.Region <= a.lastReplay[e.Core] && a.lastReplay[e.Core] != 0 {
		a.violate(e, "replay-order", "core %d replayed region %d after region %d", e.Core, e.Region, a.lastReplay[e.Core])
	}
	if e.Region <= a.drainAtCrash[e.Core] && a.drainAtCrash[e.Core] != 0 {
		a.violate(e, "replay-drained-region", "core %d replayed region %d, already drained through %d", e.Core, e.Region, a.drainAtCrash[e.Core])
	}
	if e.Region > a.commitAtCrash[e.Core] {
		a.violate(e, "replay-uncommitted-region", "core %d replayed region %d above commit watermark %d at crash", e.Core, e.Region, a.commitAtCrash[e.Core])
	}
	if e.Region > a.lastReplay[e.Core] {
		a.lastReplay[e.Core] = e.Region
	}
}

func (a *Auditor) onUndo(e Event) {
	if !a.crashed {
		return
	}
	s := a.stores[e.Seq]
	if s == nil || s.core != e.Core || s.addr != e.Addr || s.undo != e.Val {
		a.violate(e, "undo-unknown-store",
			"undo addr %#x firstseq %d val %d matches no issued store of core %d",
			e.Addr, e.Seq, e.Val, e.Core)
	} else if open := a.commitAtCrash[e.Core] + 1; s.region != open {
		a.violate(e, "undo-open-region",
			"undone store addr %#x firstseq %d belongs to region %d, not the interrupted region %d",
			e.Addr, e.Seq, s.region, open)
	}
	sv := a.shadow(e.Addr)
	expected := sv.seq >= e.Seq
	applied := e.Flags.Has(FlagApplied)
	if applied != expected {
		a.violate(e, "undo-guard-mismatch",
			"undo of addr %#x firstseq %d applied=%v, shadow seq %d predicts %v",
			e.Addr, e.Seq, applied, sv.seq, expected)
	}
	if applied && sv.committed && sv.core != e.Core {
		a.violate(e, "undo-clobbers-committed",
			"undo of core %d's uncommitted store addr %#x firstseq %d destroyed core %d's committed NVM version (seq %d) — the detectability contract let a rollback-able value escape",
			e.Core, e.Addr, e.Seq, sv.core, sv.seq)
	}
	if applied {
		newSeq := uint64(0)
		if e.Seq > 0 {
			newSeq = e.Seq - 1
		}
		a.nvm[e.Addr] = seqVal{seq: newSeq, val: e.Val, core: e.Core}
	}
}

func (a *Auditor) onRecoveryDone(Event) {
	if !a.crashed {
		return
	}
	// Resume watermarks: each core restarts from the newest durable region —
	// the larger of what drained before the crash and what recovery replayed.
	for core := range a.commitAtCrash {
		a.lastCommit[core] = a.resumePoint(core)
		a.lastDrain[core] = a.resumePoint(core)
	}
	for core := range a.lastReplay {
		a.lastCommit[core] = a.resumePoint(core)
		a.lastDrain[core] = a.resumePoint(core)
	}
	// Pending stores are gone: committed regions were replayed, the
	// interrupted region was undone; resumed execution issues fresh ones.
	a.stores = map[uint64]*storeRec{}
	a.byAddr = map[uint64][]uint64{}
	a.order = map[int32][]uint64{}
	// The recovered machine's proxy paths start with empty windows.
	a.window = map[uint64]winEntry{}
	a.pendingSync = map[int32]uint64{}
	a.crashed = false
	a.commitAtCrash, a.drainAtCrash, a.lastReplay = nil, nil, nil
}

func (a *Auditor) resumePoint(core int32) uint64 {
	r := a.drainAtCrash[core]
	if lr := a.lastReplay[core]; lr > r {
		r = lr
	}
	return r
}

func copyMap(m map[int32]uint64) map[int32]uint64 {
	out := make(map[int32]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
