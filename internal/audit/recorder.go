package audit

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
)

// DefaultRecorderCap is the default flight-recorder ring capacity. At ~64
// bytes per event this bounds the recorder near 4 MB regardless of run
// length.
const DefaultRecorderCap = 1 << 16

// FlightRecorder keeps the last N provenance events in a ring and a running
// digest over *all* events seen (dropped ones included), so two runs can be
// compared for event-stream identity even when the ring wrapped. It answers
// the debugging question aggregate counters cannot: "what happened to this
// cache line?"
type FlightRecorder struct {
	ring  []Event
	next  int    // ring write position
	total uint64 // events seen, including those evicted from the ring
	h     hash.Hash
	buf   [48]byte // event wire encoding scratch
}

// NewFlightRecorder returns a recorder holding the last `cap` events
// (DefaultRecorderCap when cap <= 0).
func NewFlightRecorder(cap int) *FlightRecorder {
	if cap <= 0 {
		cap = DefaultRecorderCap
	}
	return &FlightRecorder{ring: make([]Event, 0, cap), h: sha256.New()}
}

// Tap records the event.
func (r *FlightRecorder) Tap(e Event) {
	r.total++
	b := r.buf[:0]
	b = append(b, byte(e.Kind), byte(e.Flags))
	b = binary.LittleEndian.AppendUint32(b, uint32(e.Core))
	b = binary.LittleEndian.AppendUint64(b, e.Cycle)
	b = binary.LittleEndian.AppendUint64(b, e.Addr)
	b = binary.LittleEndian.AppendUint64(b, e.Seq)
	b = binary.LittleEndian.AppendUint64(b, e.Region)
	b = binary.LittleEndian.AppendUint64(b, e.Val)
	b = binary.LittleEndian.AppendUint64(b, e.Val2)
	b = binary.LittleEndian.AppendUint32(b, e.Count)
	r.h.Write(b)
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, e)
		r.next = len(r.ring) % cap(r.ring)
		return
	}
	r.ring[r.next] = e
	r.next = (r.next + 1) % len(r.ring)
}

// Total returns the number of events seen (including evicted ones).
func (r *FlightRecorder) Total() uint64 { return r.total }

// Dropped returns how many events fell off the ring.
func (r *FlightRecorder) Dropped() uint64 { return r.total - uint64(len(r.ring)) }

// Digest returns the sha256 over every event seen so far, in order. Two
// deterministic runs of the same program and config produce identical
// digests; any divergence in the event stream changes it.
func (r *FlightRecorder) Digest() [sha256.Size]byte {
	var d [sha256.Size]byte
	r.h.Sum(d[:0])
	return d
}

// Events returns the retained events, oldest first.
func (r *FlightRecorder) Events() []Event {
	out := make([]Event, 0, len(r.ring))
	if len(r.ring) == cap(r.ring) {
		out = append(out, r.ring[r.next:]...)
	}
	return append(out, r.ring[:r.next]...)
}

// ChainFor returns the retained events touching the given cache line,
// oldest first: every address-carrying event on the line, plus region-level
// drains whose address range covers it.
func (r *FlightRecorder) ChainFor(line uint64) []Event {
	line &^= 63
	var out []Event
	for _, e := range r.Events() {
		if eventTouchesLine(e, line) {
			out = append(out, e)
		}
	}
	return out
}

// ChainForRegion returns the retained events of one core's region: its
// stores, commit, marker launch/arrival, drain and drain writes, and
// recovery replays.
func (r *FlightRecorder) ChainForRegion(core int32, region uint64) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Core != core {
			continue
		}
		switch e.Kind {
		case EvStore, EvCommit, EvDrain, EvDrainWrite, EvRecoveryRedo, EvRecoveryRedoWrite:
			if e.Region == region {
				out = append(out, e)
			}
		case EvLaunch, EvBackArrive:
			if e.Flags.Has(FlagBoundary) && e.Region == region {
				out = append(out, e)
			}
		}
	}
	return out
}

// KindCounts returns per-kind totals over the retained events.
func (r *FlightRecorder) KindCounts() [NumKinds]uint64 {
	var n [NumKinds]uint64
	for _, e := range r.Events() {
		n[e.Kind]++
	}
	return n
}

func eventTouchesLine(e Event, line uint64) bool {
	if e.HasAddr() {
		return e.Line() == line
	}
	if e.Kind == EvDrain && e.Count > 0 {
		return e.Val&^63 <= line && line <= e.Val2&^63
	}
	return false
}
