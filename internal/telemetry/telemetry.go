// Package telemetry is the live observability bus (DESIGN.md §4j): hot
// paths — the machine scheduler loop, the sweep orchestrator, the fault
// campaigns — publish progress into atomically-updated snapshot structs,
// and a sampler collects those snapshots on an interval and exposes them
// as an OpenMetrics/Prometheus text endpoint plus a JSONL heartbeat
// stream for headless CI.
//
// The design contract is zero overhead when off. Publishing sites never
// allocate and never take locks: counters and gauges are plain
// atomic.Uint64 adds, and the machine hot path additionally gates on a
// single armed-pointer load per run — when no bus has been started, the
// per-run cost is one atomic load and the per-scheduler-pop cost is one
// nil check. Gauges that sum across concurrently running machines are
// published as wrapping deltas (Add(new−old)), so the aggregate is exact
// at every instant without any machine registry or lock.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the OpenMetrics family types the bus exposes.
type Kind int

// Metric family kinds. Counters are monotonically non-decreasing and are
// exposed with the OpenMetrics `_total` sample suffix; gauges are
// instantaneous values that may move in both directions.
const (
	Counter Kind = iota
	Gauge
)

// Metric is one sample of one family: a snapshot value the registry
// gathered from a source. Name is the family name without any suffix
// (the OpenMetrics encoder appends `_total` to counter samples itself).
type Metric struct {
	Name  string
	Help  string
	Kind  Kind
	Value float64
}

// Source is anything that can contribute metric samples to a gather.
type Source interface {
	// Collect appends the source's current samples to dst and returns
	// the extended slice. Implementations must be safe for concurrent
	// use with the publishing side.
	Collect(dst []Metric) []Metric
}

// Func adapts a closure to the Source interface, for process-local
// sources like compile-cache or result-store hit rates that live behind
// existing accessors.
type Func func(dst []Metric) []Metric

// Collect implements Source.
func (f Func) Collect(dst []Metric) []Metric { return f(dst) }

// Registry is an ordered set of sources gathered together per scrape or
// heartbeat tick. The zero value is unusable; use NewRegistry.
type Registry struct {
	mu      sync.Mutex
	sources []Source
}

// NewRegistry returns a registry pre-populated with the process-global
// machine, sweep, and campaign snapshot sources.
func NewRegistry() *Registry {
	r := &Registry{}
	r.Register(Machines, Sweeps, Campaigns, Caches)
	return r
}

// Register appends sources to the registry. Safe to call concurrently
// with Gather.
func (r *Registry) Register(srcs ...Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources = append(r.sources, srcs...)
}

// Gather collects one consistent-enough snapshot from every source and
// returns the samples sorted by family name (stable output for the text
// exposition and the heartbeat stream).
func (r *Registry) Gather() []Metric {
	r.mu.Lock()
	srcs := make([]Source, len(r.sources))
	copy(srcs, r.sources)
	r.mu.Unlock()
	var out []Metric
	for _, s := range srcs {
		out = s.Collect(out)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MachineTelemetry is the machine hot path's snapshot struct. Counter
// fields only ever grow; gauge fields are live sums over all currently
// running machines, maintained by wrapping delta publishes from each
// machine (see internal/machine's telemetry hook). All fields are
// written with atomic adds and read with atomic loads — no locks touch
// the simulator loop.
type MachineTelemetry struct {
	// Active is the number of machines currently inside Run.
	Active atomic.Int64
	// Runs counts completed machine runs (normal or crash exit).
	Runs atomic.Uint64
	// Cycles and Instret accumulate simulated cycles and retired
	// instructions across all runs, published in batches from the
	// scheduler loop.
	Cycles  atomic.Uint64
	Instret atomic.Uint64
	// QuantumGrants and QuantumAborts count conflict-aware quantum
	// extension outcomes (DESIGN.md §4i).
	QuantumGrants atomic.Uint64
	QuantumAborts atomic.Uint64
	// FrontOcc, BackOcc, PathInFlight, DrainQueue, and WPQDepth are
	// gauges: instantaneous occupancy of the per-core front/back proxy
	// buffers, the proxy path, the drain-ready queue, and the NVM write
	// pending queue, summed over running machines.
	FrontOcc     atomic.Uint64
	BackOcc      atomic.Uint64
	PathInFlight atomic.Uint64
	DrainQueue   atomic.Uint64
	WPQDepth     atomic.Uint64
	// DrainQueueCore breaks DrainQueue down by core index, so cross-core
	// drain skew (one core's phase-2 bank backed up while its peers idle)
	// is visible live. Cores at or beyond MaxCoreGauges fold into the last
	// slot. DrainCores is the high-water mark of core counts seen on any
	// armed machine; Collect exposes exactly that many per-core families,
	// so single-core runs add no extra scrape noise.
	DrainQueueCore [MaxCoreGauges]atomic.Uint64
	DrainCores     atomic.Int64
}

// MaxCoreGauges bounds the per-core gauge families a snapshot exposes.
// Machines with more cores fold the excess into the last gauge.
const MaxCoreGauges = 16

// drainCoreNames are the per-core family names, precomputed so Collect
// stays allocation-free apart from the dst append. Zero-padded so the
// sorted exposition lists cores in numeric order.
var drainCoreNames = func() [MaxCoreGauges]string {
	var n [MaxCoreGauges]string
	for i := range n {
		n[i] = fmt.Sprintf("capri_machine_drain_queue_core%02d", i)
	}
	return n
}()

// NoteCores raises the per-core gauge high-water mark to n (clamped to
// MaxCoreGauges). Machines call it once at run entry when armed.
func (t *MachineTelemetry) NoteCores(n int) {
	if n > MaxCoreGauges {
		n = MaxCoreGauges
	}
	for {
		cur := t.DrainCores.Load()
		if int64(n) <= cur || t.DrainCores.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// Collect implements Source.
func (t *MachineTelemetry) Collect(dst []Metric) []Metric {
	dst = append(dst,
		Metric{"capri_machine_active", "Machines currently inside Run.", Gauge, float64(t.Active.Load())},
		Metric{"capri_machine_runs", "Completed machine runs.", Counter, float64(t.Runs.Load())},
		Metric{"capri_machine_cycles", "Simulated cycles across all runs.", Counter, float64(t.Cycles.Load())},
		Metric{"capri_machine_instret", "Retired instructions across all runs.", Counter, float64(t.Instret.Load())},
		Metric{"capri_machine_quantum_grants", "Quantum extension grants.", Counter, float64(t.QuantumGrants.Load())},
		Metric{"capri_machine_quantum_aborts", "Quantum extension aborts.", Counter, float64(t.QuantumAborts.Load())},
		Metric{"capri_machine_front_occupancy", "Front proxy buffer entries, summed over running machines.", Gauge, float64(t.FrontOcc.Load())},
		Metric{"capri_machine_back_occupancy", "Back proxy buffer entries, summed over running machines.", Gauge, float64(t.BackOcc.Load())},
		Metric{"capri_machine_path_inflight", "Proxy path packets in flight, summed over running machines.", Gauge, float64(t.PathInFlight.Load())},
		Metric{"capri_machine_drain_queue", "Drain-ready queue entries, summed over running machines.", Gauge, float64(t.DrainQueue.Load())},
		Metric{"capri_machine_wpq_depth", "NVM write-pending-queue depth, summed over running machines.", Gauge, float64(t.WPQDepth.Load())},
	)
	n := int(t.DrainCores.Load())
	if n > MaxCoreGauges {
		n = MaxCoreGauges
	}
	for i := 0; i < n; i++ {
		dst = append(dst, Metric{drainCoreNames[i],
			"Drain-ready queue entries on this core, summed over running machines.",
			Gauge, float64(t.DrainQueueCore[i].Load())})
	}
	return dst
}

// SweepTelemetry is the sweep orchestrator's snapshot struct: unit
// progress for figure grids, prefetches, and campaign shards.
type SweepTelemetry struct {
	// UnitsPlanned counts units handed to Run across all sweeps.
	UnitsPlanned atomic.Uint64
	// UnitsDone counts units that finished (successfully or not).
	UnitsDone atomic.Uint64
	// Failures counts units whose runner returned an error.
	Failures atomic.Uint64
	// InFlight is the number of units currently executing.
	InFlight atomic.Int64
}

// Collect implements Source.
func (t *SweepTelemetry) Collect(dst []Metric) []Metric {
	return append(dst,
		Metric{"capri_sweep_units_planned", "Sweep units scheduled.", Counter, float64(t.UnitsPlanned.Load())},
		Metric{"capri_sweep_units_done", "Sweep units finished.", Counter, float64(t.UnitsDone.Load())},
		Metric{"capri_sweep_failures", "Sweep units that returned an error.", Counter, float64(t.Failures.Load())},
		Metric{"capri_sweep_inflight", "Sweep units currently executing.", Gauge, float64(t.InFlight.Load())},
	)
}

// CampaignTelemetry is the fault campaign's snapshot struct: per-trial
// progress counters published from internal/fault's campaign loop.
type CampaignTelemetry struct {
	// Targets counts campaign targets started.
	Targets atomic.Uint64
	// Trials counts fault-plan trials completed.
	Trials atomic.Uint64
	// Faults counts injected faults across all trials.
	Faults atomic.Uint64
	// Crashes, Recoveries, and NestedCrashes count the crash machinery's
	// lifecycle events observed by the campaign.
	Crashes       atomic.Uint64
	Recoveries    atomic.Uint64
	NestedCrashes atomic.Uint64
	// Violations counts trials that failed verification or audit.
	Violations atomic.Uint64
	// StoreHits counts campaign targets replayed from the result store.
	StoreHits atomic.Uint64
}

// Collect implements Source.
func (t *CampaignTelemetry) Collect(dst []Metric) []Metric {
	return append(dst,
		Metric{"capri_campaign_targets", "Fault-campaign targets started.", Counter, float64(t.Targets.Load())},
		Metric{"capri_campaign_trials", "Fault-plan trials completed.", Counter, float64(t.Trials.Load())},
		Metric{"capri_campaign_faults", "Faults injected.", Counter, float64(t.Faults.Load())},
		Metric{"capri_campaign_crashes", "Crashes observed.", Counter, float64(t.Crashes.Load())},
		Metric{"capri_campaign_recoveries", "Recoveries completed.", Counter, float64(t.Recoveries.Load())},
		Metric{"capri_campaign_nested_crashes", "Crashes injected during recovery.", Counter, float64(t.NestedCrashes.Load())},
		Metric{"capri_campaign_violations", "Trials that failed verification or audit.", Counter, float64(t.Violations.Load())},
		Metric{"capri_campaign_store_hits", "Campaign targets replayed from the result store.", Counter, float64(t.StoreHits.Load())},
	)
}

// CacheTelemetry is the compile-cache and result-store traffic snapshot,
// published per lookup from internal/compile and internal/resultstore
// (cache operations sit far off the simulator hot path, so publishing is
// unconditional). Hit rates are derived by the consumer from the counter
// pairs.
type CacheTelemetry struct {
	// CompileHits, CompileDiskHits, and CompileMisses count compile-cache
	// lookups served from memory, from the persistent store tier, and
	// compiled fresh.
	CompileHits     atomic.Uint64
	CompileDiskHits atomic.Uint64
	CompileMisses   atomic.Uint64
	// StoreHits, StoreMisses, and StorePuts count result-store traffic.
	StoreHits   atomic.Uint64
	StoreMisses atomic.Uint64
	StorePuts   atomic.Uint64
}

// Collect implements Source.
func (t *CacheTelemetry) Collect(dst []Metric) []Metric {
	return append(dst,
		Metric{"capri_compile_cache_hits", "Compile-cache lookups served from memory.", Counter, float64(t.CompileHits.Load())},
		Metric{"capri_compile_cache_disk_hits", "Compile-cache lookups served from the persistent tier.", Counter, float64(t.CompileDiskHits.Load())},
		Metric{"capri_compile_cache_misses", "Compile-cache lookups compiled fresh.", Counter, float64(t.CompileMisses.Load())},
		Metric{"capri_result_store_hits", "Result-store lookups that replayed a stored result.", Counter, float64(t.StoreHits.Load())},
		Metric{"capri_result_store_misses", "Result-store lookups that missed.", Counter, float64(t.StoreMisses.Load())},
		Metric{"capri_result_store_puts", "Results published to the store.", Counter, float64(t.StorePuts.Load())},
	)
}

// Process-global snapshot structs. Hot paths publish into these
// unconditionally (sweep, campaign, caches: one atomic add per unit,
// trial, or lookup) or when armed (machine: see EnableMachine); the
// registry reads them.
var (
	// Machines is the global machine snapshot.
	Machines = &MachineTelemetry{}
	// Sweeps is the global sweep snapshot.
	Sweeps = &SweepTelemetry{}
	// Campaigns is the global campaign snapshot.
	Campaigns = &CampaignTelemetry{}
	// Caches is the global compile-cache/result-store snapshot.
	Caches = &CacheTelemetry{}
)

// armed is the machine hot path's gate: nil means telemetry is off and
// machine runs skip all publishing (zero-overhead-when-off contract).
var armed atomic.Pointer[MachineTelemetry]

// EnableMachine arms machine-loop publishing into the global Machines
// snapshot. Machines read the armed pointer once at run entry, so runs
// already in flight keep their current arming.
func EnableMachine() { armed.Store(Machines) }

// DisableMachine disarms machine-loop publishing.
func DisableMachine() { armed.Store(nil) }

// ArmedMachine returns the machine snapshot to publish into, or nil when
// machine telemetry is off. The machine calls this once per run.
func ArmedMachine() *MachineTelemetry { return armed.Load() }
