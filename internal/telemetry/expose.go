package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// ContentType is the OpenMetrics text exposition content type served by
// the /metrics endpoint.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics encodes one gathered sample set in the OpenMetrics
// text format: `# HELP` and `# TYPE` lines per family, one sample per
// family (counters get the `_total` suffix), terminated by `# EOF`.
func WriteOpenMetrics(w io.Writer, ms []Metric) error {
	for _, m := range ms {
		kind := "gauge"
		name := m.Name
		if m.Kind == Counter {
			kind = "counter"
		}
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(m.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind); err != nil {
			return err
		}
		sample := name
		if m.Kind == Counter {
			sample += "_total"
		}
		if _, err := fmt.Fprintf(w, "%s %v\n", sample, m.Value); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// escapeHelp escapes the characters the OpenMetrics text format reserves
// in HELP text (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns an http.Handler serving the registry's current samples
// as an OpenMetrics text page. Each scrape gathers live — there is no
// scrape-side caching, so a prometheus poll or a curl in a terminal sees
// the simulator's progress as of that instant.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = WriteOpenMetrics(w, r.Gather())
	})
}
