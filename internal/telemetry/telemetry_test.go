package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegistryGatherSortsByName(t *testing.T) {
	r := &Registry{}
	r.Register(Func(func(dst []Metric) []Metric {
		return append(dst,
			Metric{Name: "zzz", Kind: Gauge, Value: 1},
			Metric{Name: "aaa", Kind: Counter, Value: 2},
		)
	}))
	ms := r.Gather()
	if len(ms) != 2 || ms[0].Name != "aaa" || ms[1].Name != "zzz" {
		t.Fatalf("gather not sorted: %+v", ms)
	}
}

func TestWriteOpenMetrics(t *testing.T) {
	var sb strings.Builder
	err := WriteOpenMetrics(&sb, []Metric{
		{Name: "capri_runs", Help: "Completed runs.", Kind: Counter, Value: 3},
		{Name: "capri_occ", Help: "Live \\ multi\nline", Kind: Gauge, Value: 7.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"# TYPE capri_runs counter\n",
		"# HELP capri_runs Completed runs.\n",
		"capri_runs_total 3\n", // counters carry the _total sample suffix
		"# TYPE capri_occ gauge\n",
		"capri_occ 7.5\n",                     // gauges do not
		"# HELP capri_occ Live \\\\ multi\\n", // help text escaped per OpenMetrics
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
	if !strings.HasSuffix(got, "# EOF\n") {
		t.Errorf("exposition must end with # EOF:\n%s", got)
	}
}

func TestHandlerServesOpenMetrics(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("content type %q, want %q", ct, ContentType)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, fam := range []string{
		"capri_machine_cycles_total",
		"capri_sweep_units_done_total",
		"capri_campaign_trials_total",
		"capri_compile_cache_hits_total",
		"capri_result_store_hits_total",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("default registry exposition missing %s:\n%s", fam, body)
		}
	}
}

func TestArming(t *testing.T) {
	DisableMachine()
	if ArmedMachine() != nil {
		t.Fatal("disarmed telemetry returned a snapshot")
	}
	EnableMachine()
	defer DisableMachine()
	if ArmedMachine() != Machines {
		t.Fatal("arming must expose the global Machines snapshot")
	}
}

func TestStartDisabledReturnsNilBus(t *testing.T) {
	DisableMachine()
	b, err := Start(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b != nil {
		t.Fatalf("both outputs empty must return a nil bus, got %+v", b)
	}
	// The nil bus is safe to use and must not have armed anything.
	b.Stop()
	if b.Addr() != "" {
		t.Error("nil bus reported an address")
	}
	if ArmedMachine() != nil {
		t.Error("disabled Start armed machine telemetry")
	}
}

func TestPerCoreDrainGauges(t *testing.T) {
	// A fresh snapshot exposes no per-core families: single-core and idle
	// processes pay no scrape noise for the multi-core breakdown.
	mt := &MachineTelemetry{}
	base := len(mt.Collect(nil))
	mt.NoteCores(4)
	ms := mt.Collect(nil)
	if len(ms) != base+4 {
		t.Fatalf("4-core snapshot exposes %d families, want %d", len(ms), base+4)
	}
	mt.DrainQueueCore[2].Add(7)
	found := false
	for _, m := range mt.Collect(nil) {
		if m.Name == "capri_machine_drain_queue_core02" {
			found = true
			if m.Kind != Gauge || m.Value != 7 {
				t.Errorf("core02 gauge = %+v, want gauge 7", m)
			}
		}
	}
	if !found {
		t.Error("capri_machine_drain_queue_core02 missing from exposition")
	}
	// The high-water mark is monotone and clamped: a later 2-core machine
	// must not hide the 4-core families, and absurd counts fold.
	mt.NoteCores(2)
	if n := len(mt.Collect(nil)); n != base+4 {
		t.Errorf("high-water regressed: %d families, want %d", n, base+4)
	}
	mt.NoteCores(1 << 20)
	if n := len(mt.Collect(nil)); n != base+MaxCoreGauges {
		t.Errorf("unclamped core count: %d families, want %d", n, base+MaxCoreGauges)
	}
}
