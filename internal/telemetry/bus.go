package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"
)

// Options configures Start. Both outputs are optional; when neither is
// set, Start returns a nil bus and the process runs with telemetry fully
// disarmed.
type Options struct {
	// Listen is the TCP address for the OpenMetrics endpoint
	// (e.g. ":9090" or "127.0.0.1:0"). Empty disables the endpoint.
	Listen string
	// HeartbeatPath is the file the JSONL heartbeat stream appends to;
	// "-" writes to stderr. Empty disables heartbeats.
	HeartbeatPath string
	// Interval is the heartbeat sampling interval (default 1s).
	Interval time.Duration
	// Registry overrides the default registry (global machine, sweep,
	// and campaign snapshots). Nil uses NewRegistry().
	Registry *Registry
}

// Bus is a running telemetry exposition: an optional HTTP /metrics
// endpoint plus an optional JSONL heartbeat sampler. Stop for a clean
// shutdown (final heartbeat flushed, listener closed, machine publishing
// disarmed).
type Bus struct {
	reg      *Registry
	srv      *http.Server
	listener net.Listener
	hb       *os.File
	hbOwned  bool
	stop     chan struct{}
	done     sync.WaitGroup
	stopOnce sync.Once
}

// Start arms machine telemetry and begins serving the configured
// outputs. It returns (nil, nil) when Options enables neither output,
// so callers can unconditionally `defer bus.Stop()` via a nil-safe
// receiver.
func Start(o Options) (*Bus, error) {
	if o.Listen == "" && o.HeartbeatPath == "" {
		return nil, nil
	}
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	reg := o.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	b := &Bus{reg: reg, stop: make(chan struct{})}
	if o.Listen != "" {
		ln, err := net.Listen("tcp", o.Listen)
		if err != nil {
			return nil, fmt.Errorf("telemetry: listen %s: %w", o.Listen, err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", Handler(reg))
		b.listener = ln
		b.srv = &http.Server{Handler: mux}
		b.done.Add(1)
		go func() {
			defer b.done.Done()
			_ = b.srv.Serve(ln) // returns on Shutdown/Close
		}()
	}
	if o.HeartbeatPath != "" {
		if o.HeartbeatPath == "-" {
			b.hb = os.Stderr
		} else {
			f, err := os.OpenFile(o.HeartbeatPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				if b.listener != nil {
					b.listener.Close()
				}
				return nil, fmt.Errorf("telemetry: heartbeat: %w", err)
			}
			b.hb = f
			b.hbOwned = true
		}
		b.done.Add(1)
		go func() {
			defer b.done.Done()
			tick := time.NewTicker(o.Interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					b.heartbeat()
				case <-b.stop:
					return
				}
			}
		}()
	}
	EnableMachine()
	return b, nil
}

// heartbeat appends one JSONL record — a timestamp plus a flat
// name→value map of every gathered sample — to the heartbeat stream.
// json.Marshal sorts map keys, so records are field-order deterministic.
func (b *Bus) heartbeat() {
	ms := b.reg.Gather()
	vals := make(map[string]float64, len(ms))
	for _, m := range ms {
		name := m.Name
		if m.Kind == Counter {
			name += "_total"
		}
		vals[name] = m.Value
	}
	rec := struct {
		TS      string             `json:"ts"`
		Metrics map[string]float64 `json:"metrics"`
	}{time.Now().UTC().Format(time.RFC3339Nano), vals}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	_, _ = b.hb.Write(append(line, '\n'))
}

// Addr returns the metrics endpoint's bound address ("" when no listener
// is configured); with Options.Listen ":0" this is how tests and scripts
// learn the ephemeral port.
func (b *Bus) Addr() string {
	if b == nil || b.listener == nil {
		return ""
	}
	return b.listener.Addr().String()
}

// Stop disarms machine telemetry, emits one final heartbeat, and shuts
// both outputs down. Safe on a nil bus and safe to call more than once.
func (b *Bus) Stop() {
	if b == nil {
		return
	}
	b.stopOnce.Do(func() {
		DisableMachine()
		close(b.stop)
		if b.hb != nil {
			b.heartbeat()
		}
		if b.srv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = b.srv.Shutdown(ctx)
			cancel()
		}
		b.done.Wait()
		if b.hbOwned {
			_ = b.hb.Close()
		}
	})
}
