package telemetry_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/progen"
	"capri/internal/sweep"
	"capri/internal/telemetry"
)

// parseOpenMetrics reads a text exposition into a name→value map and
// reports whether the page was terminated by # EOF.
func parseOpenMetrics(t *testing.T, r io.Reader) (map[string]float64, bool) {
	t.Helper()
	vals := map[string]float64{}
	eof := false
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "# EOF" {
			eof = true
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		vals[name] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return vals, eof
}

// TestTelemetrySmoke is the end-to-end exposition check `make
// telemetry-smoke` runs: start a bus on an ephemeral port with a JSONL
// heartbeat, push real work through the machine and sweep hot paths,
// scrape /metrics over HTTP, and check the families, the counts, and the
// heartbeat stream.
func TestTelemetrySmoke(t *testing.T) {
	hbPath := filepath.Join(t.TempDir(), "hb.jsonl")
	bus, err := telemetry.Start(telemetry.Options{
		Listen:        "127.0.0.1:0",
		HeartbeatPath: hbPath,
		Interval:      10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bus.Stop()
	if bus.Addr() == "" {
		t.Fatal("bus with a listener reported no address")
	}

	// Real machine work: a small generated program runs to completion with
	// telemetry armed, so the run's exit publish lands in the snapshot.
	src := progen.Generate(7, progen.Config{Funcs: 2, MaxDepth: 2, MaxStmts: 4, MaxLoopTrip: 4, Threads: 1})
	res, err := compile.Compile(src, compile.OptionsForLevel(compile.LevelLICM, 64))
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.L2Size = 256 << 10
	cfg.DRAMSize = 1 << 20
	m, err := machine.New(res.Program, cfg)
	if err != nil {
		t.Fatal(err)
	}
	runsBefore := telemetry.Machines.Runs.Load()
	cyclesBefore := telemetry.Machines.Cycles.Load()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Real sweep work: three trivial units through the orchestrator.
	doneBefore := telemetry.Sweeps.UnitsDone.Load()
	if err := sweep.Run(2, 3, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + bus.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("scrape content type %q, want %q", ct, telemetry.ContentType)
	}
	vals, eof := parseOpenMetrics(t, resp.Body)
	if !eof {
		t.Error("scrape not terminated by # EOF")
	}
	for _, fam := range []string{
		"capri_machine_active",
		"capri_machine_runs_total",
		"capri_machine_cycles_total",
		"capri_machine_instret_total",
		"capri_machine_front_occupancy",
		"capri_machine_wpq_depth",
		"capri_machine_drain_queue",
		"capri_sweep_units_planned_total",
		"capri_sweep_units_done_total",
		"capri_sweep_inflight",
		"capri_campaign_trials_total",
		"capri_campaign_violations_total",
		"capri_compile_cache_hits_total",
		"capri_compile_cache_misses_total",
		"capri_result_store_hits_total",
		"capri_result_store_misses_total",
	} {
		if _, ok := vals[fam]; !ok {
			t.Errorf("scrape missing family %s", fam)
		}
	}
	if got := vals["capri_machine_runs_total"]; got < float64(runsBefore)+1 {
		t.Errorf("machine run not counted: runs_total %v, was %d before", got, runsBefore)
	}
	if got := vals["capri_machine_cycles_total"]; got <= float64(cyclesBefore) {
		t.Errorf("machine cycles not published: cycles_total %v, was %d before", got, cyclesBefore)
	}
	if got := vals["capri_sweep_units_done_total"]; got < float64(doneBefore)+3 {
		t.Errorf("sweep units not counted: units_done_total %v, was %d before", got, doneBefore)
	}

	// Stop flushes a final heartbeat; every line must be valid JSON with
	// the timestamp and the flat metrics map.
	bus.Stop()
	hb, err := os.ReadFile(hbPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(hb)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no heartbeat lines written")
	}
	for i, line := range lines {
		var rec struct {
			TS      string             `json:"ts"`
			Metrics map[string]float64 `json:"metrics"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("heartbeat line %d not JSON: %v\n%s", i, err, line)
		}
		if _, err := time.Parse(time.RFC3339Nano, rec.TS); err != nil {
			t.Errorf("heartbeat line %d timestamp: %v", i, err)
		}
		if len(rec.Metrics) == 0 {
			t.Errorf("heartbeat line %d has no metrics", i)
		}
	}
	// The final (post-Stop) heartbeat carries the machine run.
	var last struct {
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Metrics["capri_machine_runs_total"] < float64(runsBefore)+1 {
		t.Errorf("final heartbeat missing the machine run: %v", last.Metrics["capri_machine_runs_total"])
	}
}
