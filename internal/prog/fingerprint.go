package prog

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"capri/internal/isa"
)

// Fingerprint returns a content hash of the program: every function, block,
// instruction field, recovery slice, return site and thread entry feeds the
// digest in a fixed order, so two programs hash equal iff they are
// structurally identical. The compile cache uses this as the program half of
// its content-addressed key; it is also handy for asserting byte-identical
// compiler output in tests.
func (p *Program) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wstr := func(s string) {
		w64(uint64(len(s)))
		h.Write([]byte(s))
	}
	winst := func(in *isa.Inst) {
		// Fixed-shape struct: hash every field explicitly so padding or
		// future field reordering cannot change the digest silently.
		h.Write([]byte{byte(in.Op), byte(in.Cond), byte(in.Rd), byte(in.Ra), byte(in.Rb), byte(in.Rc)})
		w64(uint64(in.Imm))
		w64(uint64(int64(in.Target)))
		w64(uint64(int64(in.Else)))
		w64(uint64(int64(in.Callee)))
	}

	wstr(p.Name)
	w64(uint64(len(p.Funcs)))
	for _, f := range p.Funcs {
		wstr(f.Name)
		w64(uint64(f.Entry))
		w64(uint64(len(f.Blocks)))
		for _, b := range f.Blocks {
			if b.BoundaryAt {
				w64(1)
			} else {
				w64(0)
			}
			w64(uint64(len(b.Insts)))
			for i := range b.Insts {
				winst(&b.Insts[i])
			}
			w64(uint64(len(b.RecoverySlices)))
			regs := make([]isa.Reg, 0, len(b.RecoverySlices))
			for r := range b.RecoverySlices {
				regs = append(regs, r)
			}
			sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
			for _, r := range regs {
				w64(uint64(r))
				slice := b.RecoverySlices[r]
				w64(uint64(len(slice)))
				for i := range slice {
					winst(&slice[i])
				}
			}
		}
	}
	w64(uint64(len(p.RetSites)))
	for _, rs := range p.RetSites {
		w64(uint64(rs.Func))
		w64(uint64(rs.Block))
		w64(uint64(rs.Index))
	}
	w64(uint64(len(p.ThreadEntries)))
	for _, te := range p.ThreadEntries {
		w64(uint64(te))
	}

	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
