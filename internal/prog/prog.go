// Package prog represents programs for the Capri toolchain: functions made of
// basic blocks over the capri/internal/isa instruction set, with an explicit
// control-flow graph. The Capri compiler transforms these programs (region
// formation, checkpoint insertion, unrolling) and the machine executes them.
//
// Calls are "lowered": OpCall pushes a return-site token onto an in-memory
// stack addressed through SP and jumps to the callee's entry block; OpRet pops
// the token and continues at the recorded (function, block, instruction)
// return site. Because the linkage lives in program memory, the entire
// machine state is registers + memory + PC — exactly the state Capri's
// whole-system persistence checkpoints and recovers.
package prog

import (
	"fmt"
	"strings"

	"capri/internal/isa"
)

// Block is a basic block: straight-line instructions ending in a terminator.
// Successor edges are encoded in the terminator (Target/Else) or implicitly
// for Call (control continues at the callee and returns to the next
// instruction).
type Block struct {
	ID    int
	Insts []isa.Inst

	// Region metadata, set by the compiler.
	//
	// BoundaryAt is true when a region boundary has been placed at the start
	// of this block. RecoverySlices, present only on boundary blocks, maps a
	// register whose checkpoint was pruned (paper §4.4.1) to the recovery
	// slice — re-executable instructions that reconstruct the register from
	// other checkpointed registers at recovery time.
	BoundaryAt     bool
	RecoverySlices map[isa.Reg][]isa.Inst
}

// Terminator returns the block's final instruction. Blocks under construction
// may not have one yet, in which case ok is false.
func (b *Block) Terminator() (*isa.Inst, bool) {
	if len(b.Insts) == 0 {
		return nil, false
	}
	in := &b.Insts[len(b.Insts)-1]
	if !in.IsTerminator() {
		return nil, false
	}
	return in, true
}

// Succs appends the IDs of this block's intra-function successors to dst.
// Ret and Halt have none; Call falls through to the same block's next
// instruction, so a Call never terminates a block in a verified program.
func (b *Block) Succs(dst []int) []int {
	t, ok := b.Terminator()
	if !ok {
		return dst
	}
	switch t.Op {
	case isa.OpBr:
		dst = append(dst, int(t.Target))
	case isa.OpBrIf:
		dst = append(dst, int(t.Target), int(t.Else))
	}
	return dst
}

// StoreCount returns the number of store-class instructions in the block
// (regular stores, atomics and checkpoint stores — everything the region
// threshold counts).
func (b *Block) StoreCount() int {
	n := 0
	for i := range b.Insts {
		if b.Insts[i].IsStore() {
			n++
		}
	}
	return n
}

// Func is a function: an entry block plus a body of blocks indexed by ID.
type Func struct {
	ID     int
	Name   string
	Entry  int
	Blocks []*Block
}

// NewFunc returns an empty function with the given name.
func NewFunc(name string) *Func {
	return &Func{Name: name, Entry: 0}
}

// NewBlock appends a new empty block and returns it.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Block returns the block with the given ID.
func (f *Func) Block(id int) *Block { return f.Blocks[id] }

// RetSite identifies the instruction after a call, where execution resumes on
// return: function ID, block ID, instruction index.
type RetSite struct {
	Func  int
	Block int
	Index int
}

// Program is a set of functions plus the call-return token table. Function 0
// of the designated entry is where each hardware thread begins (threads may
// have distinct entry functions).
type Program struct {
	Name     string
	Funcs    []*Func
	RetSites []RetSite // indexed by return-site token

	// ThreadEntries lists the entry function index for each hardware thread.
	// A single-threaded program has exactly one entry.
	ThreadEntries []int
}

// New returns an empty program with the given name.
func New(name string) *Program {
	return &Program{Name: name}
}

// AddFunc appends a function and assigns its ID.
func (p *Program) AddFunc(f *Func) *Func {
	f.ID = len(p.Funcs)
	p.Funcs = append(p.Funcs, f)
	return f
}

// FuncByName returns the function with the given name, or nil.
func (p *Program) FuncByName(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// AddRetSite registers a return site and returns its token.
func (p *Program) AddRetSite(s RetSite) int64 {
	p.RetSites = append(p.RetSites, s)
	return int64(len(p.RetSites) - 1)
}

// NumThreads returns the number of hardware threads the program wants.
func (p *Program) NumThreads() int {
	if len(p.ThreadEntries) == 0 {
		return 1
	}
	return len(p.ThreadEntries)
}

// EntryFunc returns the entry function index for the given thread.
func (p *Program) EntryFunc(thread int) int {
	if len(p.ThreadEntries) == 0 {
		return 0
	}
	return p.ThreadEntries[thread]
}

// Verify checks structural invariants: every block ends in a terminator,
// branch targets are in range, calls reference valid functions and return
// tokens, and no terminator appears mid-block. The compiler runs Verify after
// every pass; the machine refuses to load unverified programs.
func (p *Program) Verify() error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("prog %q: no functions", p.Name)
	}
	for _, te := range p.ThreadEntries {
		if te < 0 || te >= len(p.Funcs) {
			return fmt.Errorf("prog %q: thread entry f%d out of range", p.Name, te)
		}
	}
	for _, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("func %s: no blocks", f.Name)
		}
		if f.Entry < 0 || f.Entry >= len(f.Blocks) {
			return fmt.Errorf("func %s: entry b%d out of range", f.Name, f.Entry)
		}
		for _, b := range f.Blocks {
			if len(b.Insts) == 0 {
				return fmt.Errorf("func %s b%d: empty block", f.Name, b.ID)
			}
			for i := range b.Insts {
				in := &b.Insts[i]
				last := i == len(b.Insts)-1
				if in.IsTerminator() != last {
					if last {
						return fmt.Errorf("func %s b%d: missing terminator (ends with %s)", f.Name, b.ID, in)
					}
					return fmt.Errorf("func %s b%d inst %d: terminator %s mid-block", f.Name, b.ID, i, in)
				}
				if !in.Op.Valid() {
					return fmt.Errorf("func %s b%d inst %d: invalid opcode", f.Name, b.ID, i)
				}
				switch in.Op {
				case isa.OpBr:
					if int(in.Target) < 0 || int(in.Target) >= len(f.Blocks) {
						return fmt.Errorf("func %s b%d: br target b%d out of range", f.Name, b.ID, in.Target)
					}
				case isa.OpBrIf:
					if int(in.Target) < 0 || int(in.Target) >= len(f.Blocks) ||
						int(in.Else) < 0 || int(in.Else) >= len(f.Blocks) {
						return fmt.Errorf("func %s b%d: brif targets b%d/b%d out of range", f.Name, b.ID, in.Target, in.Else)
					}
				case isa.OpCall:
					if int(in.Callee) < 0 || int(in.Callee) >= len(p.Funcs) {
						return fmt.Errorf("func %s b%d: call to f%d out of range", f.Name, b.ID, in.Callee)
					}
					if in.Imm < 0 || in.Imm >= int64(len(p.RetSites)) {
						return fmt.Errorf("func %s b%d: call token %d out of range", f.Name, b.ID, in.Imm)
					}
					// The token must resolve to a real instruction in the
					// caller. (The builder points it at the instruction after
					// the call; canonicalization may redirect it to the start
					// of a freshly split block.)
					rs := p.RetSites[in.Imm]
					if rs.Func != f.ID {
						return fmt.Errorf("func %s b%d inst %d: call token %d returns into f%d", f.Name, b.ID, i, in.Imm, rs.Func)
					}
					if rs.Block < 0 || rs.Block >= len(f.Blocks) ||
						rs.Index < 0 || rs.Index >= len(f.Blocks[rs.Block].Insts) {
						return fmt.Errorf("func %s b%d inst %d: call token %d maps to invalid site %+v", f.Name, b.ID, i, in.Imm, rs)
					}
				}
			}
		}
	}
	return nil
}

// Clone deep-copies the program so compiler passes can transform it without
// mutating the caller's copy.
func (p *Program) Clone() *Program {
	q := &Program{
		Name:          p.Name,
		RetSites:      append([]RetSite(nil), p.RetSites...),
		ThreadEntries: append([]int(nil), p.ThreadEntries...),
	}
	for _, f := range p.Funcs {
		g := &Func{ID: f.ID, Name: f.Name, Entry: f.Entry}
		for _, b := range f.Blocks {
			nb := &Block{
				ID:         b.ID,
				Insts:      append([]isa.Inst(nil), b.Insts...),
				BoundaryAt: b.BoundaryAt,
			}
			if b.RecoverySlices != nil {
				nb.RecoverySlices = make(map[isa.Reg][]isa.Inst, len(b.RecoverySlices))
				for k, v := range b.RecoverySlices {
					nb.RecoverySlices[k] = append([]isa.Inst(nil), v...)
				}
			}
			g.Blocks = append(g.Blocks, nb)
		}
		q.Funcs = append(q.Funcs, g)
	}
	return q
}

// StaticStats summarises the static shape of a program.
type StaticStats struct {
	Funcs      int
	Blocks     int
	Insts      int
	Stores     int // regular stores + atomics
	Ckpts      int // checkpoint stores
	Boundaries int // blocks with a region boundary
}

// Stats computes StaticStats for the program.
func (p *Program) Stats() StaticStats {
	var s StaticStats
	s.Funcs = len(p.Funcs)
	for _, f := range p.Funcs {
		s.Blocks += len(f.Blocks)
		for _, b := range f.Blocks {
			s.Insts += len(b.Insts)
			if b.BoundaryAt {
				s.Boundaries++
			}
			for i := range b.Insts {
				switch {
				case b.Insts[i].Op == isa.OpCkpt:
					s.Ckpts++
				case b.Insts[i].IsRegularStore():
					s.Stores++
				}
			}
		}
	}
	return s
}

// String disassembles the whole program.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s\n", p.Name)
	for _, f := range p.Funcs {
		fmt.Fprintf(&sb, "func f%d %s (entry b%d):\n", f.ID, f.Name, f.Entry)
		for _, b := range f.Blocks {
			marker := ""
			if b.BoundaryAt {
				marker = "  ; <region boundary>"
			}
			fmt.Fprintf(&sb, "  b%d:%s\n", b.ID, marker)
			for i := range b.Insts {
				fmt.Fprintf(&sb, "    %s\n", b.Insts[i].String())
			}
		}
	}
	return sb.String()
}
