package prog

import (
	"fmt"

	"capri/internal/isa"
)

// Builder constructs programs with correct call tokens and terminators. It is
// the front end our synthetic workloads use in place of a real parser: each
// workload generator emits IR through a Builder and the result goes straight
// into the Capri compiler.
type Builder struct {
	p *Program
}

// NewBuilder returns a Builder for a fresh program.
func NewBuilder(name string) *Builder {
	return &Builder{p: New(name)}
}

// Program finalizes and returns the built program, verifying it first.
// It panics on a malformed program: builder misuse is a programming error in
// a workload generator, not a runtime condition.
func (bd *Builder) Program() *Program {
	if err := bd.p.Verify(); err != nil {
		panic(fmt.Sprintf("prog.Builder: %v", err))
	}
	return bd.p
}

// SetThreadEntries declares the per-thread entry functions.
func (bd *Builder) SetThreadEntries(funcs ...*FuncBuilder) {
	bd.p.ThreadEntries = bd.p.ThreadEntries[:0]
	for _, f := range funcs {
		bd.p.ThreadEntries = append(bd.p.ThreadEntries, f.f.ID)
	}
}

// Func starts a new function. The first block created becomes the entry.
func (bd *Builder) Func(name string) *FuncBuilder {
	f := bd.p.AddFunc(NewFunc(name))
	return &FuncBuilder{bd: bd, f: f}
}

// FuncBuilder builds one function block by block.
type FuncBuilder struct {
	bd  *Builder
	f   *Func
	cur *Block
}

// Raw returns the underlying function (for tests that poke at internals).
func (fb *FuncBuilder) Raw() *Func { return fb.f }

// ID returns the function's index in the program.
func (fb *FuncBuilder) ID() int { return fb.f.ID }

// Block creates a new basic block and makes it current.
func (fb *FuncBuilder) Block() *Block {
	b := fb.f.NewBlock()
	fb.cur = b
	return b
}

// SetBlock switches emission to an existing block.
func (fb *FuncBuilder) SetBlock(b *Block) { fb.cur = b }

// Cur returns the block currently being emitted into.
func (fb *FuncBuilder) Cur() *Block { return fb.cur }

func (fb *FuncBuilder) emit(in isa.Inst) {
	if fb.cur == nil {
		fb.Block()
	}
	fb.cur.Insts = append(fb.cur.Insts, in)
}

// --- ALU ---

// Op3 emits a three-register ALU operation rd = ra op rb.
func (fb *FuncBuilder) Op3(op isa.Op, rd, ra, rb isa.Reg) {
	fb.emit(isa.Inst{Op: op, Rd: rd, Ra: ra, Rb: rb})
}

// OpI emits a register-immediate ALU operation rd = ra op imm.
func (fb *FuncBuilder) OpI(op isa.Op, rd, ra isa.Reg, imm int64) {
	fb.emit(isa.Inst{Op: op, Rd: rd, Ra: ra, Imm: imm})
}

// MovI emits rd = imm.
func (fb *FuncBuilder) MovI(rd isa.Reg, imm int64) {
	fb.emit(isa.Inst{Op: isa.OpMovI, Rd: rd, Imm: imm})
}

// Mov emits rd = ra.
func (fb *FuncBuilder) Mov(rd, ra isa.Reg) {
	fb.emit(isa.Inst{Op: isa.OpMov, Rd: rd, Ra: ra})
}

// Add emits rd = ra + rb.
func (fb *FuncBuilder) Add(rd, ra, rb isa.Reg) { fb.Op3(isa.OpAdd, rd, ra, rb) }

// AddI emits rd = ra + imm.
func (fb *FuncBuilder) AddI(rd, ra isa.Reg, imm int64) { fb.OpI(isa.OpAddI, rd, ra, imm) }

// Mul emits rd = ra * rb.
func (fb *FuncBuilder) Mul(rd, ra, rb isa.Reg) { fb.Op3(isa.OpMul, rd, ra, rb) }

// MulI emits rd = ra * imm.
func (fb *FuncBuilder) MulI(rd, ra isa.Reg, imm int64) { fb.OpI(isa.OpMulI, rd, ra, imm) }

// AndI emits rd = ra & imm.
func (fb *FuncBuilder) AndI(rd, ra isa.Reg, imm int64) { fb.OpI(isa.OpAndI, rd, ra, imm) }

// Xor emits rd = ra ^ rb.
func (fb *FuncBuilder) Xor(rd, ra, rb isa.Reg) { fb.Op3(isa.OpXor, rd, ra, rb) }

// Sel emits rd = ra != 0 ? rb : rc.
func (fb *FuncBuilder) Sel(rd, ra, rb, rc isa.Reg) {
	fb.emit(isa.Inst{Op: isa.OpSel, Rd: rd, Ra: ra, Rb: rb, Rc: rc})
}

// --- Memory ---

// Load emits rd = mem[ra+off].
func (fb *FuncBuilder) Load(rd, ra isa.Reg, off int64) {
	fb.emit(isa.Inst{Op: isa.OpLoad, Rd: rd, Ra: ra, Imm: off})
}

// Store emits mem[ra+off] = rb.
func (fb *FuncBuilder) Store(ra isa.Reg, off int64, rb isa.Reg) {
	fb.emit(isa.Inst{Op: isa.OpStore, Ra: ra, Imm: off, Rb: rb})
}

// --- Control flow ---

// Br emits an unconditional branch to b.
func (fb *FuncBuilder) Br(b *Block) {
	fb.emit(isa.Inst{Op: isa.OpBr, Target: int32(b.ID)})
}

// BrIf emits a conditional branch: if ra cond rb goto then, else goto els.
func (fb *FuncBuilder) BrIf(ra isa.Reg, cond isa.Cond, rb isa.Reg, then, els *Block) {
	fb.emit(isa.Inst{
		Op: isa.OpBrIf, Cond: cond, Ra: ra, Rb: rb,
		Target: int32(then.ID), Else: int32(els.ID),
	})
}

// Call emits a call to the callee, registering the return site token for the
// instruction that follows.
func (fb *FuncBuilder) Call(callee *FuncBuilder) {
	if fb.cur == nil {
		fb.Block()
	}
	tok := fb.bd.p.AddRetSite(RetSite{
		Func:  fb.f.ID,
		Block: fb.cur.ID,
		Index: len(fb.cur.Insts) + 1,
	})
	fb.emit(isa.Inst{Op: isa.OpCall, Callee: int32(callee.f.ID), Imm: tok})
}

// Ret emits a return.
func (fb *FuncBuilder) Ret() { fb.emit(isa.Inst{Op: isa.OpRet}) }

// Halt emits a thread halt.
func (fb *FuncBuilder) Halt() { fb.emit(isa.Inst{Op: isa.OpHalt}) }

// --- Synchronization ---

// Fence emits a full memory fence.
func (fb *FuncBuilder) Fence() { fb.emit(isa.Inst{Op: isa.OpFence}) }

// AtomicAdd emits rd = fetch-and-add(mem[ra+off], rb).
func (fb *FuncBuilder) AtomicAdd(rd, ra isa.Reg, off int64, rb isa.Reg) {
	fb.emit(isa.Inst{Op: isa.OpAtomicAdd, Rd: rd, Ra: ra, Imm: off, Rb: rb})
}

// AtomicCAS emits rd = old; if old == rb then mem[ra+off] = rc.
func (fb *FuncBuilder) AtomicCAS(rd, ra isa.Reg, off int64, rb, rc isa.Reg) {
	fb.emit(isa.Inst{Op: isa.OpAtomicCAS, Rd: rd, Ra: ra, Imm: off, Rb: rb, Rc: rc})
}

// Lock emits a spin-lock acquire on mem[ra+off].
func (fb *FuncBuilder) Lock(ra isa.Reg, off int64) {
	fb.emit(isa.Inst{Op: isa.OpLock, Ra: ra, Imm: off})
}

// Unlock emits a spin-lock release on mem[ra+off].
func (fb *FuncBuilder) Unlock(ra isa.Reg, off int64) {
	fb.emit(isa.Inst{Op: isa.OpUnlock, Ra: ra, Imm: off})
}

// Barrier emits a global thread barrier.
func (fb *FuncBuilder) Barrier() { fb.emit(isa.Inst{Op: isa.OpBarrier}) }

// Emit appends ra to the program output tape.
func (fb *FuncBuilder) Emit(ra isa.Reg) { fb.emit(isa.Inst{Op: isa.OpEmit, Ra: ra}) }
