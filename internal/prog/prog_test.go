package prog

import (
	"strings"
	"testing"

	"capri/internal/isa"
)

// buildLoopProgram builds: main() { r0=0; loop: if r0>=10 goto exit;
// store [r1+0], r0; r0++; goto loop; exit: halt } — the canonical shape for
// most tests in this package.
func buildLoopProgram(t *testing.T) *Program {
	t.Helper()
	bd := NewBuilder("loop")
	f := bd.Func("main")
	entry := f.Block()
	header := f.Block()
	body := f.Block()
	exit := f.Block()

	f.SetBlock(entry)
	f.MovI(0, 0)
	f.MovI(1, 4096)
	f.MovI(2, 10)
	f.Br(header)

	f.SetBlock(header)
	f.BrIf(0, isa.CondGE, 2, exit, body)

	f.SetBlock(body)
	f.Store(1, 0, 0)
	f.AddI(0, 0, 1)
	f.Br(header)

	f.SetBlock(exit)
	f.Halt()

	return bd.Program()
}

func TestBuilderLoopVerifies(t *testing.T) {
	p := buildLoopProgram(t)
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got := len(p.Funcs); got != 1 {
		t.Fatalf("funcs = %d, want 1", got)
	}
	if got := len(p.Funcs[0].Blocks); got != 4 {
		t.Fatalf("blocks = %d, want 4", got)
	}
}

func TestBlockSuccs(t *testing.T) {
	p := buildLoopProgram(t)
	f := p.Funcs[0]
	if s := f.Blocks[0].Succs(nil); len(s) != 1 || s[0] != 1 {
		t.Errorf("entry succs = %v", s)
	}
	if s := f.Blocks[1].Succs(nil); len(s) != 2 || s[0] != 3 || s[1] != 2 {
		t.Errorf("header succs = %v", s)
	}
	if s := f.Blocks[3].Succs(nil); len(s) != 0 {
		t.Errorf("halt block succs = %v", s)
	}
}

func TestStoreCount(t *testing.T) {
	p := buildLoopProgram(t)
	f := p.Funcs[0]
	if n := f.Blocks[2].StoreCount(); n != 1 {
		t.Errorf("body stores = %d, want 1", n)
	}
	if n := f.Blocks[0].StoreCount(); n != 0 {
		t.Errorf("entry stores = %d, want 0", n)
	}
	// Checkpoint stores count too.
	f.Blocks[2].Insts = append([]isa.Inst{{Op: isa.OpCkpt, Ra: 5}}, f.Blocks[2].Insts...)
	if n := f.Blocks[2].StoreCount(); n != 2 {
		t.Errorf("body stores with ckpt = %d, want 2", n)
	}
}

func TestCallTokens(t *testing.T) {
	bd := NewBuilder("calls")
	callee := bd.Func("leaf")
	callee.Block()
	callee.MovI(0, 42)
	callee.Ret()

	main := bd.Func("main")
	main.Block()
	main.MovI(isa.SP, 1<<20)
	main.Call(callee)
	main.Emit(0)
	main.Halt()

	p := bd.Program()
	if len(p.RetSites) != 1 {
		t.Fatalf("ret sites = %d, want 1", len(p.RetSites))
	}
	rs := p.RetSites[0]
	if rs.Func != main.ID() || rs.Block != 0 || rs.Index != 2 {
		t.Errorf("ret site = %+v", rs)
	}
}

func TestVerifyCatchesBadTarget(t *testing.T) {
	p := buildLoopProgram(t)
	p.Funcs[0].Blocks[0].Insts[3].Target = 99
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("Verify = %v, want out-of-range error", err)
	}
}

func TestVerifyCatchesMidBlockTerminator(t *testing.T) {
	p := buildLoopProgram(t)
	b := p.Funcs[0].Blocks[2]
	b.Insts[0] = isa.Inst{Op: isa.OpRet} // terminator mid-block
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "mid-block") {
		t.Errorf("Verify = %v, want mid-block error", err)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	p := buildLoopProgram(t)
	b := p.Funcs[0].Blocks[3]
	b.Insts = b.Insts[:0]
	b.Insts = append(b.Insts, isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: 1})
	if err := p.Verify(); err == nil {
		t.Error("Verify should reject block without terminator")
	}
}

func TestVerifyCatchesEmptyBlock(t *testing.T) {
	p := buildLoopProgram(t)
	p.Funcs[0].Blocks[3].Insts = nil
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "empty block") {
		t.Errorf("Verify = %v, want empty-block error", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := buildLoopProgram(t)
	p.Funcs[0].Blocks[1].BoundaryAt = true
	p.Funcs[0].Blocks[2].RecoverySlices = map[isa.Reg][]isa.Inst{
		3: {{Op: isa.OpMovI, Rd: 3, Imm: 9}},
	}
	q := p.Clone()

	// Mutate the clone; the original must be untouched.
	q.Funcs[0].Blocks[2].Insts[0].Imm = 999
	q.Funcs[0].Blocks[1].BoundaryAt = false
	q.Funcs[0].Blocks[2].RecoverySlices[3][0].Imm = 777

	if p.Funcs[0].Blocks[2].Insts[0].Imm == 999 {
		t.Error("Clone shares instruction storage")
	}
	if !p.Funcs[0].Blocks[1].BoundaryAt {
		t.Error("Clone shares boundary flags")
	}
	if p.Funcs[0].Blocks[2].RecoverySlices[3][0].Imm == 777 {
		t.Error("Clone shares recovery slices")
	}
	if err := q.Verify(); err != nil {
		t.Errorf("clone Verify: %v", err)
	}
}

func TestStats(t *testing.T) {
	p := buildLoopProgram(t)
	p.Funcs[0].Blocks[1].BoundaryAt = true
	s := p.Stats()
	if s.Funcs != 1 || s.Blocks != 4 {
		t.Errorf("stats = %+v", s)
	}
	if s.Stores != 1 {
		t.Errorf("stores = %d, want 1", s.Stores)
	}
	if s.Boundaries != 1 {
		t.Errorf("boundaries = %d, want 1", s.Boundaries)
	}
	wantInsts := 4 + 1 + 3 + 1
	if s.Insts != wantInsts {
		t.Errorf("insts = %d, want %d", s.Insts, wantInsts)
	}
}

func TestThreadEntries(t *testing.T) {
	bd := NewBuilder("mt")
	t0 := bd.Func("worker0")
	t0.Block()
	t0.Halt()
	t1 := bd.Func("worker1")
	t1.Block()
	t1.Halt()
	bd.SetThreadEntries(t0, t1)
	p := bd.Program()
	if p.NumThreads() != 2 {
		t.Fatalf("threads = %d, want 2", p.NumThreads())
	}
	if p.EntryFunc(0) != 0 || p.EntryFunc(1) != 1 {
		t.Errorf("entries = %d,%d", p.EntryFunc(0), p.EntryFunc(1))
	}
}

func TestSingleThreadDefault(t *testing.T) {
	p := buildLoopProgram(t)
	if p.NumThreads() != 1 {
		t.Errorf("threads = %d, want 1", p.NumThreads())
	}
	if p.EntryFunc(0) != 0 {
		t.Errorf("entry = %d, want 0", p.EntryFunc(0))
	}
}

func TestProgramString(t *testing.T) {
	p := buildLoopProgram(t)
	s := p.String()
	for _, want := range []string{"program loop", "func f0 main", "store [r1+0], r0", "brif"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}

func TestVerifyRejectsBadThreadEntry(t *testing.T) {
	p := buildLoopProgram(t)
	p.ThreadEntries = []int{5}
	if err := p.Verify(); err == nil {
		t.Error("out-of-range thread entry accepted")
	}
}

func TestVerifyRejectsInvalidOpcode(t *testing.T) {
	p := buildLoopProgram(t)
	p.Funcs[0].Blocks[0].Insts[0].Op = isa.Op(200)
	if err := p.Verify(); err == nil {
		t.Error("invalid opcode accepted")
	}
}

func TestVerifyRejectsCrossFunctionToken(t *testing.T) {
	bd := NewBuilder("x")
	leaf := bd.Func("leaf")
	leaf.Block()
	leaf.Ret()
	main := bd.Func("main")
	main.Block()
	main.MovI(isa.SP, 1<<19)
	main.Call(leaf)
	main.Halt()
	p := bd.Program()
	// Corrupt: make the token claim to return into the callee.
	p.RetSites[0].Func = leaf.ID()
	if err := p.Verify(); err == nil {
		t.Error("cross-function return token accepted")
	}
}

func TestVerifyRejectsEmptyProgram(t *testing.T) {
	if err := New("empty").Verify(); err == nil {
		t.Error("empty program accepted")
	}
}

func TestVerifyRejectsBadEntry(t *testing.T) {
	p := buildLoopProgram(t)
	p.Funcs[0].Entry = 99
	if err := p.Verify(); err == nil {
		t.Error("bad entry accepted")
	}
}

func TestFuncByNameMissing(t *testing.T) {
	p := buildLoopProgram(t)
	if p.FuncByName("ghost") != nil {
		t.Error("found nonexistent function")
	}
	if p.FuncByName("main") == nil {
		t.Error("missed existing function")
	}
}
