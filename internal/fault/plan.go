// Package fault is the deterministic, seed-replayable hardware-fault
// injection subsystem (DESIGN.md §4f): JSON fault plans describing torn NVM
// line writes at power failure, nested crashes during §5.4 recovery, and
// transient NVM write errors in the phase-2 drain engine; a plan executor
// that drives the machine package's fault hooks under the online Fig. 7
// auditor; and a campaign engine that sweeps seeded random plans over the
// progen corpus and the paper benchmarks, shrinking every failure to a
// minimal reproducible plan.
//
// Everything is deterministic: a plan's JSON plus the target identity fully
// reproduce a failure, and shrinking re-runs the executor, so the minimal
// plan it reports is stable.
package fault

import (
	"encoding/json"
	"fmt"
	"os"

	"capri/internal/compile"
	"capri/internal/machine"
	"capri/internal/prog"
	"capri/internal/progen"
	"capri/internal/workload"
)

// PlanSchema identifies the fault-plan JSON format.
const PlanSchema = "capri/fault-plan/v1"

// Kind classifies one injected fault.
type Kind string

// Fault kinds.
const (
	// KindTornWriteback tears a recent dirty-line writeback at the crash:
	// of its applied word writes (ascending address), only the first Keep
	// persist. Pick selects the journaled line (0 = newest).
	KindTornWriteback Kind = "torn-writeback"
	// KindTornDrain tears core Core's oldest in-flight phase-2 drain at the
	// crash: the first Keep valid redo entries were already pushed to NVM.
	KindTornDrain Kind = "torn-drain"
	// KindRecoveryCrash injects a nested power failure after Step
	// persistent steps of the recovery protocol (redo writes, marker folds,
	// undo applications). Multiple such faults interrupt successive
	// recovery attempts in plan order.
	KindRecoveryCrash Kind = "recovery-crash"
	// KindDrainError makes core Core's phase-2 drain completion fail Fails
	// consecutive times with a transient NVM write error (Region restricts
	// to one region; 0 matches any).
	KindDrainError Kind = "drain-error"
)

// Fault is one injected fault. Field meaning depends on Kind (see the kind
// constants); unused fields are zero and omitted from JSON.
type Fault struct {
	Kind   Kind   `json:"kind"`
	Core   int    `json:"core,omitempty"`
	Pick   int    `json:"pick,omitempty"`
	Keep   int    `json:"keep,omitempty"`
	Step   uint64 `json:"step,omitempty"`
	Region uint64 `json:"region,omitempty"`
	Fails  int    `json:"fails,omitempty"`
}

// String renders the fault as one compact token.
func (f Fault) String() string {
	switch f.Kind {
	case KindTornWriteback:
		return fmt.Sprintf("torn-writeback(pick=%d,keep=%d)", f.Pick, f.Keep)
	case KindTornDrain:
		return fmt.Sprintf("torn-drain(core=%d,keep=%d)", f.Core, f.Keep)
	case KindRecoveryCrash:
		return fmt.Sprintf("recovery-crash(step=%d)", f.Step)
	case KindDrainError:
		if f.Region != 0 {
			return fmt.Sprintf("drain-error(core=%d,region=%d,fails=%d)", f.Core, f.Region, f.Fails)
		}
		return fmt.Sprintf("drain-error(core=%d,fails=%d)", f.Core, f.Fails)
	}
	return string(f.Kind)
}

// Target identifies the workload a plan runs against: a named paper
// benchmark, a synthetic campaign workload (see synth.go), or a progen
// corpus program (seed + shape index into CorpusShapes).
type Target struct {
	Bench       string `json:"bench,omitempty"`
	Scale       int    `json:"scale,omitempty"`
	Synth       string `json:"synth,omitempty"`
	ProgenSeed  uint64 `json:"progen_seed,omitempty"`
	ProgenShape int    `json:"progen_shape,omitempty"`
	Threshold   int    `json:"threshold,omitempty"`
	// Cores pins the machine geometry (0: the default, bumped to the
	// program's thread count). Recorded in the plan so a multi-core
	// campaign's plans are self-describing and replayable byte-for-byte.
	Cores int `json:"cores,omitempty"`
}

// Name returns a stable human-readable target identity.
func (t Target) Name() string {
	switch {
	case t.Bench != "":
		return t.Bench
	case t.Synth != "":
		return t.Synth
	}
	return fmt.Sprintf("progen-%d-s%d", t.ProgenSeed, t.ProgenShape)
}

// CorpusShapes are the four progen generation shapes of the repository's
// 104-program corpus — the same table the differential and audit sweeps
// cycle through, referenced from plans by index so a plan's JSON alone
// reproduces the program.
var CorpusShapes = []progen.Config{
	{Funcs: 3, MaxDepth: 3, MaxStmts: 5, MaxLoopTrip: 6, Threads: 1},
	{Funcs: 2, MaxDepth: 2, MaxStmts: 4, MaxLoopTrip: 4, Threads: 2},
	{Funcs: 4, MaxDepth: 3, MaxStmts: 6, MaxLoopTrip: 5, Threads: 1},
	{Funcs: 2, MaxDepth: 2, MaxStmts: 4, MaxLoopTrip: 4, Threads: 2, Barriers: true},
}

// Build compiles the target and returns the program plus the machine
// configuration the campaign runs it under. The caches are deliberately
// tiny (progen targets get the Fig. 7 tests' near-degenerate geometry):
// dirty lines must actually reach the memory controller for torn-writeback
// faults to have something to tear and for the recovery undo path to carry
// weight — at the sweeps' geometries no workload ever evicts a dirty line.
func (t Target) Build() (*prog.Program, machine.Config, error) {
	threshold := t.Threshold
	if threshold <= 0 {
		threshold = 64
	}
	var src *prog.Program
	cfg := machine.DefaultConfig()
	cfg.Threshold = threshold
	switch {
	case t.Bench != "":
		b, err := workload.ByName(t.Bench)
		if err != nil {
			return nil, cfg, err
		}
		scale := t.Scale
		if scale <= 0 {
			scale = 1
		}
		src = b.Build(scale)
		cfg.L1Size = 4 << 10
		cfg.L2Size = 64 << 10
		cfg.DRAMSize = 1 << 20
	case t.Synth != "":
		var err error
		src, err = buildSynth(t.Synth)
		if err != nil {
			return nil, cfg, err
		}
		cfg.L1Size = 256
		cfg.L1Ways = 1
		cfg.L2Size = 512
		cfg.L2Ways = 1
		cfg.DRAMSize = 1 << 14
	default:
		shape := CorpusShapes[((t.ProgenShape%len(CorpusShapes))+len(CorpusShapes))%len(CorpusShapes)]
		src = progen.Generate(t.ProgenSeed, shape)
		cfg.L1Size = 256
		cfg.L1Ways = 1
		cfg.L2Size = 512
		cfg.L2Ways = 1
		cfg.DRAMSize = 1 << 14
	}
	if t.Cores > 0 {
		cfg.Cores = t.Cores
	}
	if n := src.NumThreads(); n > cfg.Cores {
		cfg.Cores = n
	}
	res, err := compile.Compile(src, compile.OptionsForLevel(compile.LevelLICM, threshold))
	if err != nil {
		return nil, cfg, fmt.Errorf("%s: compile: %w", t.Name(), err)
	}
	return res.Program, cfg, nil
}

// Plan is one seeded fault plan: the target, the primary crash point
// (retired-instruction count), and the faults to inject. A plan is the unit
// of reproduction — `capricrash -plan failure.json` replays it exactly.
type Plan struct {
	Schema  string  `json:"schema"`
	Target  Target  `json:"target"`
	Seed    uint64  `json:"seed,omitempty"` // generator seed (provenance only)
	CrashAt uint64  `json:"crash_at"`
	Faults  []Fault `json:"faults"`
}

// Summary renders the plan as one line.
func (p Plan) Summary() string {
	s := fmt.Sprintf("%s crash@%d", p.Target.Name(), p.CrashAt)
	for _, f := range p.Faults {
		s += " " + f.String()
	}
	return s
}

// WriteFile serializes the plan as indented JSON ("-" writes to stdout).
func (p Plan) WriteFile(path string) error {
	b, err := json.MarshalIndent(p, "", " ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadPlan loads a fault plan, rejecting unknown schemas.
func ReadPlan(path string) (Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, err
	}
	var p Plan
	if err := json.Unmarshal(b, &p); err != nil {
		return Plan{}, fmt.Errorf("%s: %w", path, err)
	}
	if p.Schema != PlanSchema {
		return Plan{}, fmt.Errorf("%s: schema %q, want %q", path, p.Schema, PlanSchema)
	}
	return p, nil
}

// rng is the splitmix64 PRNG (self-contained so plan generation is
// reproducible independent of the standard library's generator).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// GeneratePlan derives a random fault plan from a seed: a crash point inside
// the golden run and 1..maxFaults faults with kind-appropriate random
// parameters. Drain-error failure counts stay below the machine's default
// retry budget so exhaustion (a separately tested degradation) is opt-in,
// not a random campaign outcome.
func GeneratePlan(seed uint64, target Target, instret uint64, maxFaults, threads int) Plan {
	r := rng{s: seed}
	p := Plan{Schema: PlanSchema, Target: target, Seed: seed, CrashAt: 1}
	if instret > 2 {
		p.CrashAt = 1 + r.next()%(instret-1)
	}
	if maxFaults < 1 {
		maxFaults = 1
	}
	if threads < 1 {
		threads = 1
	}
	n := 1 + r.intn(maxFaults)
	for i := 0; i < n; i++ {
		switch r.next() % 4 {
		case 0:
			// Small Pick values: journals rarely hold more than a few lines,
			// and a Pick past the journal end is a vacuous no-op tear.
			p.Faults = append(p.Faults, Fault{
				Kind: KindTornWriteback, Pick: r.intn(4), Keep: r.intn(4),
			})
		case 1:
			p.Faults = append(p.Faults, Fault{
				Kind: KindTornDrain, Core: r.intn(threads), Keep: 1 + r.intn(8),
			})
		case 2:
			p.Faults = append(p.Faults, Fault{
				Kind: KindRecoveryCrash, Step: 1 + r.next()%64,
			})
		case 3:
			p.Faults = append(p.Faults, Fault{
				Kind: KindDrainError, Core: r.intn(threads), Fails: 1 + r.intn(4),
			})
		}
	}
	return p
}
