package fault

import (
	"testing"

	"capri/internal/machine"
	"capri/internal/workload"
)

// TestContentionTargets: the generator covers every contention workload,
// pins each target to its own core geometry, and filters by core count.
func TestContentionTargets(t *testing.T) {
	all := ContentionTargets(1, 64)
	if want := len(workload.Contention()); len(all) != want {
		t.Fatalf("got %d targets, want %d", len(all), want)
	}
	for _, tgt := range all {
		b, err := workload.ByName(tgt.Bench)
		if err != nil {
			t.Fatal(err)
		}
		if tgt.Cores != b.Threads {
			t.Errorf("%s: target cores %d, workload threads %d", tgt.Bench, tgt.Cores, b.Threads)
		}
		_, cfg, err := tgt.Build()
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Cores != tgt.Cores {
			t.Errorf("%s: built config has %d cores, target pins %d", tgt.Bench, cfg.Cores, tgt.Cores)
		}
	}
	small := ContentionTargets(1, 64, 2, 4)
	if len(small) != 6 {
		t.Fatalf("2/4-core filter kept %d targets, want 6", len(small))
	}
	for _, tgt := range small {
		if tgt.Cores != 2 && tgt.Cores != 4 {
			t.Errorf("%s leaked through the 2/4-core filter (cores %d)", tgt.Bench, tgt.Cores)
		}
	}
}

// TestCampaignContentionCleanTree: the fixed-seed multi-core campaign over
// all three contention workloads at 2, 4, and 8 cores — crash points land
// inside atomic two-phase commits and mid-drain — passes with zero
// unexplained auditor violations, and recovery commutes (RunPlan re-recovers
// every crash image with the core order reversed and compares the images
// byte-for-byte).
func TestCampaignContentionCleanTree(t *testing.T) {
	res, err := RunCampaign(CampaignConfig{
		Seed: 1, Trials: 3, MaxFaults: 3,
		Targets: ContentionTargets(1, 64),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		f := res.Failures[0]
		t.Fatalf("clean tree failed: plan %s shrunk to %s: %s",
			f.Plan.Summary(), f.Shrunk.Summary(), f.Err)
	}
	if res.Crashes == 0 || res.Faults == 0 || res.EventsAudited == 0 {
		t.Fatalf("campaign exercised nothing: %+v", res)
	}
	if res.Recoveries < res.Crashes {
		t.Fatalf("crashed %d times but only recovered %d", res.Crashes, res.Recoveries)
	}
}

// mutationCampaignContention arms one cross-core protocol mutation and runs
// the fixed-seed contention campaign; the mutation must be caught with a
// minimal (<= 3 fault) reproducer that replays from its JSON alone.
func mutationCampaignContention(t *testing.T, flag *bool) Failure {
	t.Helper()
	*flag = true
	defer func() { *flag = false }()
	res, err := RunCampaign(CampaignConfig{
		Seed: 1, Trials: 4, MaxFaults: 3,
		Targets: ContentionTargets(1, 64, 2, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("mutated cross-core protocol survived the contention campaign undetected")
	}
	f := res.Failures[0]
	if len(f.Shrunk.Faults) > 3 {
		t.Fatalf("shrunk plan still has %d faults (> 3): %s", len(f.Shrunk.Faults), f.Shrunk.Summary())
	}
	outc, err := ReplayPlan(f.Shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if outc.Err == nil {
		t.Fatalf("shrunk plan %s does not reproduce", f.Shrunk.Summary())
	}
	return f
}

// TestMutationSyncNoCommit: dropping the commit that seals a synchronizing
// store's region (the dropped-fence-ordering bug) is caught — the auditor's
// sync-unordered-commit rule fires on the core's next store.
func TestMutationSyncNoCommit(t *testing.T) {
	f := mutationCampaignContention(t, &machine.Mutations.SyncNoCommit)
	t.Logf("sync-no-commit caught: %s (%s)", f.Shrunk.Summary(), f.Err)
}

// TestMutationDrainNoGuard: phase-2 drains bypassing the NVM sequence guard
// (reordered cross-core drains) are caught — a slow core's stale drain
// clobbers a newer committed value and the line-version-chain /
// sync-persist-order rules fire.
func TestMutationDrainNoGuard(t *testing.T) {
	f := mutationCampaignContention(t, &machine.Mutations.DrainNoGuard)
	t.Logf("drain-no-guard caught: %s (%s)", f.Shrunk.Summary(), f.Err)
}

// TestMutationReplayNoGuard: recovery redo writes bypassing the sequence
// guard (non-commuting recovery) are caught — either the auditor flags the
// stale replay or RunPlan's reversed-order re-recovery diverges.
func TestMutationReplayNoGuard(t *testing.T) {
	f := mutationCampaignContention(t, &machine.Mutations.ReplayNoGuard)
	t.Logf("replay-no-guard caught: %s (%s)", f.Shrunk.Summary(), f.Err)
}
