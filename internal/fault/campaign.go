package fault

import (
	"encoding/json"
	"fmt"
	"time"

	"capri/internal/machine"
	"capri/internal/prog"
	"capri/internal/recovery"
	"capri/internal/resultstore"
	"capri/internal/sweep"
	"capri/internal/telemetry"
	"capri/internal/workload"
)

// CorpusTargets returns the soak campaign's progen targets: `seeds` corpus
// programs cycling the four generation shapes under the corpus seed
// schedule (the same 104-program universe the differential sweep covers).
func CorpusTargets(seeds, threshold int) []Target {
	out := make([]Target, 0, seeds)
	for s := 0; s < seeds; s++ {
		out = append(out, Target{
			ProgenSeed:  uint64(s)*0x9e3779b9 + 1,
			ProgenShape: s % len(CorpusShapes),
			Threshold:   threshold,
		})
	}
	return out
}

// BenchTargets returns one target per paper benchmark.
func BenchTargets(scale, threshold int) []Target {
	var out []Target
	for _, b := range workload.All() {
		out = append(out, Target{Bench: b.Name, Scale: scale, Threshold: threshold})
	}
	return out
}

// ContentionTargets returns one target per cross-core contention workload
// whose thread count is in cores (nil: all of them), each pinned to its own
// geometry. These are the campaign's multi-core stress set: shared
// fetch-and-add lines, an MPMC persistent queue, and lock-protected record
// updates, with crash points landing inside atomic two-phase commits and
// mid-drain.
func ContentionTargets(scale, threshold int, cores ...int) []Target {
	var out []Target
	for _, b := range workload.Contention() {
		if len(cores) > 0 {
			keep := false
			for _, c := range cores {
				if b.Threads == c {
					keep = true
					break
				}
			}
			if !keep {
				continue
			}
		}
		out = append(out, Target{Bench: b.Name, Scale: scale, Threshold: threshold, Cores: b.Threads})
	}
	return out
}

// CampaignConfig parameterizes a fault campaign.
type CampaignConfig struct {
	Seed      uint64        // base seed; trial seeds derive deterministically
	Trials    int           // fault plans per target (default 3)
	MaxFaults int           // faults per plan (default 3)
	Targets   []Target      // workloads to sweep
	Budget    time.Duration // stop starting new targets after this long (0: none)
	// Jobs shards targets across the sweep orchestrator (0 or 1:
	// sequential). Targets are independent — each owns its program, golden
	// state and machines — and aggregation folds per-target outcomes in
	// target order, so the campaign result is the same at any job count.
	Jobs int
	// Store, when set, content-addresses each target's outcome (plans,
	// shrunk failures and all) so a rerun of the same campaign replays from
	// disk instead of re-injecting faults. Keys bind the toolchain salt, the
	// campaign seed, the target's index and identity, and the trial shape.
	Store *resultstore.Store
	Log   func(format string, args ...any)
}

// Failure is one reproducible campaign failure: the original failing plan
// and its shrunk minimal form, both replayable via `capricrash -plan`.
type Failure struct {
	Plan       Plan
	Shrunk     Plan
	Err        string
	ShrinkRuns int
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	Targets       int
	Trials        int
	Faults        int // faults injected across all plans
	Crashes       int
	Vacuous       int
	Exhausted     int
	NestedCrashes int
	Recoveries    int
	DrainRetries  uint64
	EventsAudited uint64
	// StoreHits counts targets whose outcome replayed from the attached
	// result store instead of being re-executed.
	StoreHits int
	Failures  []Failure
}

// targetOutcome is one target's campaign contribution — the unit the result
// store persists. Ran distinguishes an executed target from one skipped by
// the budget (skips are never stored).
type targetOutcome struct {
	Ran           bool      `json:"ran"`
	Trials        int       `json:"trials"`
	Faults        int       `json:"faults"`
	Crashes       int       `json:"crashes"`
	Vacuous       int       `json:"vacuous"`
	Exhausted     int       `json:"exhausted"`
	NestedCrashes int       `json:"nested_crashes"`
	Recoveries    int       `json:"recoveries"`
	DrainRetries  uint64    `json:"drain_retries"`
	EventsAudited uint64    `json:"events_audited"`
	Failures      []Failure `json:"failures,omitempty"`
}

// planSeed derives the deterministic per-trial plan seed, so any trial is
// reproducible from (base seed, target index, trial index) alone — and the
// plan JSON records the derived seed.
func planSeed(base, target, trial uint64) uint64 {
	r := rng{s: base ^ (target+1)*0x9e3779b97f4a7c15}
	r.next()
	return r.next() + trial*0x2545f4914f6cdd1d
}

// campaignKey content-addresses one target's outcome: toolchain salt (the
// simulator and compiler ARE inputs to a fault response), campaign seed,
// target index (plan seeds derive from it), target identity, and the trial
// shape. Anything else — job count, wall-clock, sibling targets' outcomes —
// cannot change the target's result and stays out of the key.
func campaignKey(cc CampaignConfig, ti int, target Target) resultstore.Key {
	tj, err := json.Marshal(target)
	if err != nil {
		panic(err) // Target is a plain struct; cannot fail
	}
	meta := fmt.Sprintf("seed=%d ti=%d trials=%d maxfaults=%d", cc.Seed, ti, cc.Trials, cc.MaxFaults)
	return resultstore.KeyOf("capri/fault-campaign", sweep.ToolchainSalt(), tj, []byte(meta))
}

// runTarget executes one target's full trial schedule: build once, capture
// the golden state once, then Trials independent plans. The first failing
// trial is shrunk to a minimal failing plan and recorded; remaining trials
// of that target are skipped (one minimal reproducer per target is the
// useful artifact).
func runTarget(cc CampaignConfig, ti int, target Target, logf func(string, ...any)) (targetOutcome, error) {
	to := targetOutcome{Ran: true}
	pg, cfg, err := target.Build()
	if err != nil {
		return to, err
	}
	telemetry.Campaigns.Targets.Add(1)
	g, err := recovery.RunGolden(pg, cfg)
	if err != nil {
		return to, fmt.Errorf("%s: golden: %w", target.Name(), err)
	}
	for trial := 0; trial < cc.Trials; trial++ {
		seed := planSeed(cc.Seed, uint64(ti), uint64(trial))
		plan := GeneratePlan(seed, target, g.Instret, cc.MaxFaults, pg.NumThreads())
		outc := RunPlan(pg, cfg, g, plan)
		to.Trials++
		to.Faults += len(plan.Faults)
		to.Recoveries += outc.Recoveries
		to.NestedCrashes += outc.NestedCrashes
		to.DrainRetries += outc.DrainRetries
		to.EventsAudited += outc.EventsAudited
		if outc.Crashed {
			to.Crashes++
		}
		if outc.Vacuous {
			to.Vacuous++
		}
		if outc.Exhausted {
			to.Exhausted++
		}
		// Live campaign progress: a handful of atomic adds per trial,
		// each trial a full run+crash+recovery simulation.
		t := telemetry.Campaigns
		t.Trials.Add(1)
		t.Faults.Add(uint64(len(plan.Faults)))
		t.Recoveries.Add(uint64(outc.Recoveries))
		t.NestedCrashes.Add(uint64(outc.NestedCrashes))
		if outc.Crashed {
			t.Crashes.Add(1)
		}
		if outc.Err == nil {
			continue
		}
		t.Violations.Add(1)
		logf("%s: trial %d FAILED: %v — shrinking", target.Name(), trial, outc.Err)
		shrunk, runs := Shrink(pg, cfg, g, plan)
		to.Failures = append(to.Failures, Failure{
			Plan:       plan,
			Shrunk:     shrunk,
			Err:        outc.Err.Error(),
			ShrinkRuns: runs,
		})
		logf("%s: minimal plan (%d shrink runs): %s", target.Name(), runs, shrunk.Summary())
		break
	}
	return to, nil
}

// RunCampaign sweeps seeded fault plans over the targets, sharding targets
// across cc.Jobs workers (see CampaignConfig.Jobs). Per-target outcomes fold
// into the result in target order, so counters and the Failures list are
// identical at any job count. With a store attached, previously executed
// targets replay their stored outcomes — shrunk plans included — without
// re-injecting a single fault, and fresh outcomes are published back. Build
// or golden-run errors fail the campaign (they mean the target itself is
// broken, not the fault response); the aggregated result of the remaining
// targets is still returned alongside the lowest-indexed error.
func RunCampaign(cc CampaignConfig) (*CampaignResult, error) {
	if cc.Trials <= 0 {
		cc.Trials = 3
	}
	if cc.MaxFaults <= 0 {
		cc.MaxFaults = 3
	}
	logf := cc.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var deadline time.Time
	if cc.Budget > 0 {
		deadline = time.Now().Add(cc.Budget)
	}
	outs := make([]targetOutcome, len(cc.Targets))
	hits := make([]bool, len(cc.Targets))
	err := sweep.Run(cc.Jobs, len(cc.Targets), func(ti int) error {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil // budget-skipped: outs[ti].Ran stays false
		}
		target := cc.Targets[ti]
		var key resultstore.Key
		if cc.Store != nil {
			key = campaignKey(cc, ti, target)
			if raw, ok := cc.Store.Get(key); ok {
				var to targetOutcome
				if json.Unmarshal(raw, &to) == nil && to.Ran {
					outs[ti] = to
					hits[ti] = true
					telemetry.Campaigns.StoreHits.Add(1)
					return nil
				}
			}
		}
		to, terr := runTarget(cc, ti, target, logf)
		if terr != nil {
			return terr
		}
		outs[ti] = to
		if cc.Store != nil {
			if raw, merr := json.Marshal(to); merr == nil {
				cc.Store.Put(key, raw)
			}
		}
		return nil
	})
	res := &CampaignResult{}
	skipped := 0
	for ti, to := range outs {
		if !to.Ran {
			skipped++
			continue
		}
		if hits[ti] {
			res.StoreHits++
		}
		res.Targets++
		res.Trials += to.Trials
		res.Faults += to.Faults
		res.Crashes += to.Crashes
		res.Vacuous += to.Vacuous
		res.Exhausted += to.Exhausted
		res.NestedCrashes += to.NestedCrashes
		res.Recoveries += to.Recoveries
		res.DrainRetries += to.DrainRetries
		res.EventsAudited += to.EventsAudited
		res.Failures = append(res.Failures, to.Failures...)
	}
	if skipped > 0 {
		logf("budget exhausted: %d/%d targets skipped", skipped, len(cc.Targets))
	}
	if cc.Store != nil {
		if ferr := cc.Store.Flush(); err == nil {
			err = ferr
		}
	}
	return res, err
}

// ReplayPlan builds the plan's target, captures its golden state, and
// executes the plan — the one-call reproduction path behind
// `capricrash -plan failure.json`.
func ReplayPlan(plan Plan) (Outcome, error) {
	pg, cfg, err := plan.Target.Build()
	if err != nil {
		return Outcome{}, err
	}
	g, err := recovery.RunGolden(pg, cfg)
	if err != nil {
		return Outcome{}, fmt.Errorf("%s: golden: %w", plan.Target.Name(), err)
	}
	return RunPlan(pg, cfg, g, plan), nil
}

// shrinkRunCap bounds the executor runs one shrink spends; RunPlan is
// deterministic, so the cap only limits effort, never correctness.
const shrinkRunCap = 200

// Shrink minimizes a failing plan: greedy one-fault removal to a fixpoint,
// interleaved with per-fault parameter shrinking (halving Pick/Keep/Step,
// collapsing Fails to 1), accepting every candidate that still fails. The
// executor is deterministic, so the result is a stable minimal failing plan;
// a plan that does not reproduce its failure is returned unchanged.
func Shrink(pg *prog.Program, cfg machine.Config, g *recovery.Golden, plan Plan) (Plan, int) {
	runs := 0
	fails := func(p Plan) bool {
		runs++
		return RunPlan(pg, cfg, g, p).Err != nil
	}
	if !fails(plan) {
		return plan, runs
	}
	cur := plan
	for changed := true; changed && runs < shrinkRunCap; {
		changed = false
		// Drop faults one at a time.
		for i := 0; i < len(cur.Faults) && runs < shrinkRunCap; i++ {
			cand := cur
			cand.Faults = append(append([]Fault{}, cur.Faults[:i]...), cur.Faults[i+1:]...)
			if fails(cand) {
				cur = cand
				changed = true
				i--
			}
		}
		// Shrink each surviving fault's parameters.
		for i := 0; i < len(cur.Faults) && runs < shrinkRunCap; i++ {
			for _, small := range shrinkFault(cur.Faults[i]) {
				cand := cur
				cand.Faults = append([]Fault{}, cur.Faults...)
				cand.Faults[i] = small
				if fails(cand) {
					cur = cand
					changed = true
					break
				}
			}
		}
	}
	return cur, runs
}

// shrinkFault proposes strictly smaller variants of one fault, most
// aggressive first.
func shrinkFault(f Fault) []Fault {
	var out []Fault
	add := func(g Fault) {
		if g != f {
			out = append(out, g)
		}
	}
	g := f
	g.Pick, g.Keep = 0, 0
	if g.Kind == KindRecoveryCrash {
		g.Step = 1
	}
	if g.Fails > 1 {
		g.Fails = 1
	}
	add(g)
	g = f
	g.Pick /= 2
	add(g)
	g = f
	g.Keep /= 2
	add(g)
	g = f
	if g.Step > 1 {
		g.Step /= 2
		add(g)
	}
	g = f
	if g.Fails > 1 {
		g.Fails = 1
		add(g)
	}
	return out
}
