package fault

import (
	"fmt"
	"time"

	"capri/internal/machine"
	"capri/internal/prog"
	"capri/internal/recovery"
	"capri/internal/workload"
)

// CorpusTargets returns the soak campaign's progen targets: `seeds` corpus
// programs cycling the four generation shapes under the corpus seed
// schedule (the same 104-program universe the differential sweep covers).
func CorpusTargets(seeds, threshold int) []Target {
	out := make([]Target, 0, seeds)
	for s := 0; s < seeds; s++ {
		out = append(out, Target{
			ProgenSeed:  uint64(s)*0x9e3779b9 + 1,
			ProgenShape: s % len(CorpusShapes),
			Threshold:   threshold,
		})
	}
	return out
}

// BenchTargets returns one target per paper benchmark.
func BenchTargets(scale, threshold int) []Target {
	var out []Target
	for _, b := range workload.All() {
		out = append(out, Target{Bench: b.Name, Scale: scale, Threshold: threshold})
	}
	return out
}

// CampaignConfig parameterizes a fault campaign.
type CampaignConfig struct {
	Seed      uint64        // base seed; trial seeds derive deterministically
	Trials    int           // fault plans per target (default 3)
	MaxFaults int           // faults per plan (default 3)
	Targets   []Target      // workloads to sweep
	Budget    time.Duration // stop starting new targets after this long (0: none)
	Log       func(format string, args ...any)
}

// Failure is one reproducible campaign failure: the original failing plan
// and its shrunk minimal form, both replayable via `capricrash -plan`.
type Failure struct {
	Plan       Plan
	Shrunk     Plan
	Err        string
	ShrinkRuns int
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	Targets       int
	Trials        int
	Faults        int // faults injected across all plans
	Crashes       int
	Vacuous       int
	Exhausted     int
	NestedCrashes int
	Recoveries    int
	DrainRetries  uint64
	EventsAudited uint64
	Failures      []Failure
}

// planSeed derives the deterministic per-trial plan seed, so any trial is
// reproducible from (base seed, target index, trial index) alone — and the
// plan JSON records the derived seed.
func planSeed(base, target, trial uint64) uint64 {
	r := rng{s: base ^ (target+1)*0x9e3779b97f4a7c15}
	r.next()
	return r.next() + trial*0x2545f4914f6cdd1d
}

// RunCampaign sweeps seeded fault plans over the targets: per target it
// compiles once, captures the golden state once, then executes Trials
// independent plans. The first failing trial of a target is shrunk to a
// minimal failing plan and recorded; remaining trials of that target are
// skipped (one minimal reproducer per target is the useful artifact).
// Build or golden-run errors abort the campaign — they mean the target
// itself is broken, not the fault response.
func RunCampaign(cc CampaignConfig) (*CampaignResult, error) {
	if cc.Trials <= 0 {
		cc.Trials = 3
	}
	if cc.MaxFaults <= 0 {
		cc.MaxFaults = 3
	}
	logf := cc.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	res := &CampaignResult{}
	var deadline time.Time
	if cc.Budget > 0 {
		deadline = time.Now().Add(cc.Budget)
	}
	for ti, target := range cc.Targets {
		if !deadline.IsZero() && time.Now().After(deadline) {
			logf("budget exhausted after %d/%d targets", ti, len(cc.Targets))
			break
		}
		pg, cfg, err := target.Build()
		if err != nil {
			return res, err
		}
		g, err := recovery.RunGolden(pg, cfg)
		if err != nil {
			return res, fmt.Errorf("%s: golden: %w", target.Name(), err)
		}
		res.Targets++
		for trial := 0; trial < cc.Trials; trial++ {
			seed := planSeed(cc.Seed, uint64(ti), uint64(trial))
			plan := GeneratePlan(seed, target, g.Instret, cc.MaxFaults, pg.NumThreads())
			outc := RunPlan(pg, cfg, g, plan)
			res.Trials++
			res.Faults += len(plan.Faults)
			res.Recoveries += outc.Recoveries
			res.NestedCrashes += outc.NestedCrashes
			res.DrainRetries += outc.DrainRetries
			res.EventsAudited += outc.EventsAudited
			if outc.Crashed {
				res.Crashes++
			}
			if outc.Vacuous {
				res.Vacuous++
			}
			if outc.Exhausted {
				res.Exhausted++
			}
			if outc.Err == nil {
				continue
			}
			logf("%s: trial %d FAILED: %v — shrinking", target.Name(), trial, outc.Err)
			shrunk, runs := Shrink(pg, cfg, g, plan)
			res.Failures = append(res.Failures, Failure{
				Plan:       plan,
				Shrunk:     shrunk,
				Err:        outc.Err.Error(),
				ShrinkRuns: runs,
			})
			logf("%s: minimal plan (%d shrink runs): %s", target.Name(), runs, shrunk.Summary())
			break
		}
	}
	return res, nil
}

// ReplayPlan builds the plan's target, captures its golden state, and
// executes the plan — the one-call reproduction path behind
// `capricrash -plan failure.json`.
func ReplayPlan(plan Plan) (Outcome, error) {
	pg, cfg, err := plan.Target.Build()
	if err != nil {
		return Outcome{}, err
	}
	g, err := recovery.RunGolden(pg, cfg)
	if err != nil {
		return Outcome{}, fmt.Errorf("%s: golden: %w", plan.Target.Name(), err)
	}
	return RunPlan(pg, cfg, g, plan), nil
}

// shrinkRunCap bounds the executor runs one shrink spends; RunPlan is
// deterministic, so the cap only limits effort, never correctness.
const shrinkRunCap = 200

// Shrink minimizes a failing plan: greedy one-fault removal to a fixpoint,
// interleaved with per-fault parameter shrinking (halving Pick/Keep/Step,
// collapsing Fails to 1), accepting every candidate that still fails. The
// executor is deterministic, so the result is a stable minimal failing plan;
// a plan that does not reproduce its failure is returned unchanged.
func Shrink(pg *prog.Program, cfg machine.Config, g *recovery.Golden, plan Plan) (Plan, int) {
	runs := 0
	fails := func(p Plan) bool {
		runs++
		return RunPlan(pg, cfg, g, p).Err != nil
	}
	if !fails(plan) {
		return plan, runs
	}
	cur := plan
	for changed := true; changed && runs < shrinkRunCap; {
		changed = false
		// Drop faults one at a time.
		for i := 0; i < len(cur.Faults) && runs < shrinkRunCap; i++ {
			cand := cur
			cand.Faults = append(append([]Fault{}, cur.Faults[:i]...), cur.Faults[i+1:]...)
			if fails(cand) {
				cur = cand
				changed = true
				i--
			}
		}
		// Shrink each surviving fault's parameters.
		for i := 0; i < len(cur.Faults) && runs < shrinkRunCap; i++ {
			for _, small := range shrinkFault(cur.Faults[i]) {
				cand := cur
				cand.Faults = append([]Fault{}, cur.Faults...)
				cand.Faults[i] = small
				if fails(cand) {
					cur = cand
					changed = true
					break
				}
			}
		}
	}
	return cur, runs
}

// shrinkFault proposes strictly smaller variants of one fault, most
// aggressive first.
func shrinkFault(f Fault) []Fault {
	var out []Fault
	add := func(g Fault) {
		if g != f {
			out = append(out, g)
		}
	}
	g := f
	g.Pick, g.Keep = 0, 0
	if g.Kind == KindRecoveryCrash {
		g.Step = 1
	}
	if g.Fails > 1 {
		g.Fails = 1
	}
	add(g)
	g = f
	g.Pick /= 2
	add(g)
	g = f
	g.Keep /= 2
	add(g)
	g = f
	if g.Step > 1 {
		g.Step /= 2
		add(g)
	}
	g = f
	if g.Fails > 1 {
		g.Fails = 1
		add(g)
	}
	return out
}
