package fault

import (
	"reflect"
	"testing"

	"capri/internal/machine"
	"capri/internal/recovery"
	"capri/internal/workload"
)

// permutations returns every ordering of 0..n-1 (n! slices).
func permutations(n int) [][]int {
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			p := make([]int, n)
			copy(p, base)
			out = append(out, p)
			return
		}
		for i := k; i < n; i++ {
			base[k], base[i] = base[i], base[k]
			rec(k + 1)
			base[k], base[i] = base[i], base[k]
		}
	}
	rec(0)
	return out
}

// TestRecoveryOrderCommutes: recovering the same crash image with the
// per-core log streams replayed in any order converges to the byte-identical
// persistent state — NVM image and recovered per-core records alike. All n!
// orders are checked for 2- and 4-core images; the 8-core image samples
// identity, reversal, a rotation, and two fixed shuffles (40320 orders would
// prove nothing more: commutativity is pairwise, and the sampled set covers
// every adjacent inversion class the full sweep would).
func TestRecoveryOrderCommutes(t *testing.T) {
	cases := []struct {
		bench  string
		orders [][]int
	}{
		{"mt-queue-c2", permutations(2)},
		{"mt-lockrec-c4", permutations(4)},
		{"mt-counter-c8", [][]int{
			{0, 1, 2, 3, 4, 5, 6, 7},
			{7, 6, 5, 4, 3, 2, 1, 0},
			{3, 4, 5, 6, 7, 0, 1, 2},
			{5, 2, 7, 0, 6, 1, 4, 3},
			{3, 6, 0, 5, 1, 7, 2, 4},
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.bench, func(t *testing.T) {
			tgt := Target{Bench: tc.bench, Scale: 1, Threshold: 64}
			pg, cfg, err := tgt.Build()
			if err != nil {
				t.Fatal(err)
			}
			g, err := recovery.RunGolden(pg, cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := workload.ByName(tc.bench)
			if err != nil {
				t.Fatal(err)
			}
			// Crash mid-run at two points: deep inside the contention loops
			// (half way) and near the tail where drains race completion.
			for _, frac := range []uint64{2, 4} {
				crashAt := g.Instret - g.Instret/frac
				m, err := machine.New(pg, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.RunUntil(crashAt); err != nil {
					t.Fatalf("crash@%d: run: %v", crashAt, err)
				}
				if m.Done() {
					t.Fatalf("crash@%d: program already finished", crashAt)
				}
				img, err := m.Crash()
				if err != nil {
					t.Fatalf("crash@%d: image: %v", crashAt, err)
				}
				if got := len(img.Streams); got != b.Threads {
					t.Fatalf("crash@%d: image has %d streams, want %d", crashAt, got, b.Threads)
				}

				var ref *machine.Machine
				for i, order := range tc.orders {
					r, _, err := machine.RecoverOrdered(img, order, nil)
					if err != nil {
						t.Fatalf("crash@%d order %v: recover: %v", crashAt, order, err)
					}
					if i == 0 {
						ref = r
						continue
					}
					if !reflect.DeepEqual(ref.NVMEntries(), r.NVMEntries()) {
						t.Fatalf("crash@%d: order %v yields a different NVM image than %v",
							crashAt, order, tc.orders[0])
					}
					if !reflect.DeepEqual(ref.Records(), r.Records()) {
						t.Fatalf("crash@%d: order %v yields different recovery records than %v",
							crashAt, order, tc.orders[0])
					}
				}

				// The recovered machine (any order — they are identical) must
				// resume to a state satisfying the workload's own invariants.
				if err := ref.Run(); err != nil {
					t.Fatalf("crash@%d: resume: %v", crashAt, err)
				}
				if err := b.Check(1, ref.MemSnapshot()); err != nil {
					t.Fatalf("crash@%d: resumed state: %v", crashAt, err)
				}
			}
		})
	}
}
