package fault

import (
	"errors"
	"fmt"
	"reflect"

	"capri/internal/audit"
	"capri/internal/machine"
	"capri/internal/prog"
	"capri/internal/recovery"
	"capri/internal/workload"
)

// Outcome is the result of executing one fault plan. Err is nil when the run
// was legal: the auditor saw no Fig. 7 violation and the final state matched
// the golden run (or the run degraded to a structured drain-exhaustion stop,
// or finished before the crash point — vacuous but still golden-checked).
type Outcome struct {
	Crashed       bool // the primary power failure fired
	Vacuous       bool // program finished before the crash point
	Exhausted     bool // drain retry budget exhausted (expected degradation)
	Recoveries    int  // recovery attempts, including interrupted ones
	NestedCrashes int  // nested power failures injected during recovery
	DrainRetries  uint64
	EventsAudited uint64
	Err           error

	// Provenance of the run, for record writing (capricrash -record-out).
	Flight  *audit.FlightRecorder
	Auditor *audit.Auditor
	Machine *machine.Machine // final machine; nil if the run died early
}

// RunPlan executes one fault plan against a compiled target under the online
// auditor: run to the crash point with drain errors armed, inject the
// primary power failure with the plan's torn writes, recover (interrupted by
// each recovery-crash fault in plan order, re-recovering from the nested
// image every time), resume, and verify the final outputs and memory against
// the golden run. Execution is fully deterministic: the same plan always
// produces the same outcome.
func RunPlan(pg *prog.Program, cfg machine.Config, g *recovery.Golden, plan Plan) Outcome {
	out := Outcome{}

	// Split the plan by fault kind.
	var tears []machine.Tear
	var recoverySteps []uint64
	type drainFault struct {
		core   int
		region uint64
		fails  int
	}
	var drains []drainFault
	for _, f := range plan.Faults {
		switch f.Kind {
		case KindTornWriteback:
			tears = append(tears, machine.Tear{Kind: machine.TearWriteback, Pick: f.Pick, Keep: f.Keep})
		case KindTornDrain:
			tears = append(tears, machine.Tear{Kind: machine.TearDrain, Pick: f.Core, Keep: f.Keep})
		case KindRecoveryCrash:
			recoverySteps = append(recoverySteps, f.Step)
		case KindDrainError:
			drains = append(drains, drainFault{core: f.Core, region: f.Region, fails: f.Fails})
		default:
			out.Err = fmt.Errorf("unknown fault kind %q", f.Kind)
			return out
		}
	}
	fcfg := machine.FaultConfig{}
	if len(drains) > 0 {
		// The hook consumes the plan's failure budget across the whole run
		// (pre-crash and resumed machine alike) — drain state is persistent
		// hardware, the plan is about the physical NVM device.
		fcfg.DrainError = func(core int, region uint64, attempt int) bool {
			for i := range drains {
				d := &drains[i]
				if d.fails <= 0 || d.core != core {
					continue
				}
				if d.region != 0 && d.region != region {
					continue
				}
				d.fails--
				return true
			}
			return false
		}
	}

	// Final-state verification. The default compares outputs and memory
	// byte-for-byte against the golden run. Workloads that register their own
	// invariant checker (the contention suite) are interleaving-dependent —
	// the strict pre-crash schedule and the re-interleaved resume legally
	// diverge from golden word-for-word — so for those the conservation
	// invariants are checked instead, plus exactly-once I/O (every thread
	// emits the same number of values as golden: no lost or doubled emits).
	verify := func(fin *machine.Machine) error { return verifyGolden(fin, g) }
	if plan.Target.Bench != "" {
		if b, err := workload.ByName(plan.Target.Bench); err == nil && b.Check != nil {
			scale := plan.Target.Scale
			if scale <= 0 {
				scale = 1
			}
			verify = func(fin *machine.Machine) error {
				if err := b.Check(scale, fin.MemSnapshot()); err != nil {
					return err
				}
				for t := range g.Outputs {
					if got := len(fin.Output(t)); got != len(g.Outputs[t]) {
						return fmt.Errorf("thread %d emitted %d values, golden %d", t, got, len(g.Outputs[t]))
					}
				}
				return nil
			}
		}
	}

	m, err := machine.New(pg, cfg)
	if err != nil {
		out.Err = err
		return out
	}
	flight := audit.NewFlightRecorder(audit.DefaultRecorderCap)
	aud := audit.NewAuditor(m.AuditOptions())
	aud.AttachRecorder(flight)
	tap := audit.Tee(flight, aud)
	m.SetTap(tap)
	m.ArmFaults(fcfg)
	out.Flight, out.Auditor = flight, aud

	finish := func(fin *machine.Machine) Outcome {
		out.Machine = fin
		out.EventsAudited = aud.EventsAudited()
		if fin != nil {
			out.DrainRetries += fin.Stats().DrainRetries
		}
		if err := aud.Err(); err != nil && out.Err == nil {
			out.Err = fmt.Errorf("audit: %w", err)
		}
		return out
	}

	var xerr *machine.DrainExhaustedError
	if err := m.RunUntil(plan.CrashAt); err != nil {
		if errors.As(err, &xerr) {
			// The retry budget ran out before the crash point: the machine
			// degraded to a structured hard stop. Expected, not a failure —
			// but the event stream up to the stop must still be legal.
			out.Exhausted = true
			return finish(m)
		}
		out.Err = fmt.Errorf("run to crash@%d: %w", plan.CrashAt, err)
		return finish(m)
	}
	if m.Done() {
		// Program finished before the crash point: no failure to inject, but
		// the completed run must still match golden and audit clean.
		out.Vacuous = true
		out.Err = verify(m)
		return finish(m)
	}

	img, err := m.CrashTorn(tears)
	if err != nil {
		out.Err = fmt.Errorf("crash@%d: image: %w", plan.CrashAt, err)
		return finish(m)
	}
	out.Crashed = true
	out.DrainRetries += m.Stats().DrainRetries

	// Recovery, interrupted by each recovery-crash fault in plan order.
	// lastImg tracks the image the final (completed) recovery ran from, for
	// the order-commutativity check below.
	var r *machine.Machine
	var rep *machine.RecoveryReport
	lastImg := img
	for _, step := range recoverySteps {
		lastImg = img
		m2, irep, nested, err := machine.RecoverInterrupted(img, tap, step)
		if err != nil {
			out.Err = fmt.Errorf("recover (interrupted@%d): %w", step, err)
			return finish(nil)
		}
		out.Recoveries++
		if nested == nil {
			// The protocol finished in fewer persistent steps than the fault
			// demanded; the recovery completed normally.
			r, rep = m2, irep
			break
		}
		out.NestedCrashes++
		img = nested
	}
	if r == nil {
		lastImg = img
		r, rep, err = machine.RecoverInstrumented(img, nil, tap)
		if err != nil {
			out.Err = fmt.Errorf("recover: %w", err)
			return finish(nil)
		}
		out.Recoveries++
	}
	if rep.ConflictingUndo != 0 {
		out.Err = fmt.Errorf("%d conflicting cross-core undo entries", rep.ConflictingUndo)
		return finish(r)
	}

	// Detectability: every per-core sync-op descriptor in the recovered
	// records must be backed by a persisted NVM version at least as new —
	// the op is provably complete, never half-present.
	if i := r.VerifyDetectable(); i >= 0 {
		rec := r.Records()[i]
		out.Err = fmt.Errorf("core %d: sync descriptor (op %d addr %#x seq %d) not backed by NVM: detectability broken",
			i, rec.Sync.Op, rec.Sync.Addr, rec.Sync.Seq)
		return finish(r)
	}

	// Order commutativity: recovering the same image with the core order
	// reversed must converge to the byte-identical persistent state. (The
	// auditor checks the order the machine actually used; this checks the
	// orders it didn't.)
	if len(lastImg.Streams) > 1 {
		rev := make([]int, len(lastImg.Streams))
		for i := range rev {
			rev[i] = len(rev) - 1 - i
		}
		r2, _, err := machine.RecoverOrdered(lastImg, rev, nil)
		if err != nil {
			out.Err = fmt.Errorf("reversed-order recover: %w", err)
			return finish(r)
		}
		if !reflect.DeepEqual(r.NVMEntries(), r2.NVMEntries()) {
			out.Err = fmt.Errorf("recovery does not commute: reversed core order yields a different NVM image")
			return finish(r)
		}
		if !reflect.DeepEqual(r.Records(), r2.Records()) {
			out.Err = fmt.Errorf("recovery does not commute: reversed core order yields different recovery records")
			return finish(r)
		}
	}

	// The resumed run faces the same faulty NVM device: the drain-error
	// budget left in the plan keeps firing.
	r.ArmFaults(fcfg)
	if err := r.Run(); err != nil {
		if errors.As(err, &xerr) {
			out.Exhausted = true
			return finish(r)
		}
		out.Err = fmt.Errorf("resume: %w", err)
		return finish(r)
	}
	out.Err = verify(r)
	return finish(r)
}

// verifyGolden checks the machine's final outputs and architectural memory
// against the golden run.
func verifyGolden(m *machine.Machine, g *recovery.Golden) error {
	for t := range g.Outputs {
		if !reflect.DeepEqual(m.Output(t), g.Outputs[t]) {
			return fmt.Errorf("thread %d output %v, golden %v", t, m.Output(t), g.Outputs[t])
		}
	}
	snap := m.MemSnapshot()
	for a, v := range g.Mem {
		if got := snap[a]; got != v {
			return fmt.Errorf("mem[%#x] = %d, golden %d", a, got, v)
		}
	}
	return nil
}
