package fault

import (
	"fmt"

	"capri/internal/isa"
	"capri/internal/machine"
	"capri/internal/prog"
)

// Synthetic campaign workloads. The progen corpus and the paper benchmarks
// exercise breadth; these programs are adversarial by construction — shapes
// chosen so specific recovery obligations carry weight under the campaign's
// tiny caches. rmwsweep is the canonical undo workload: read-modify-writes
// across a footprint far larger than the L1/L2, so uncommitted increments
// are constantly written back to NVM mid-region and recovery MUST roll them
// back before re-execution (skipping phase B double-applies them).

// synthNames lists the synthetic targets in campaign order.
var synthNames = []string{"rmwsweep"}

// SynthTargets returns one target per synthetic campaign workload.
func SynthTargets(threshold int) []Target {
	out := make([]Target, 0, len(synthNames))
	for _, n := range synthNames {
		out = append(out, Target{Synth: n, Threshold: threshold})
	}
	return out
}

// buildSynth constructs a synthetic workload's source program.
func buildSynth(name string) (*prog.Program, error) {
	switch name {
	case "rmwsweep":
		return synthRMWSweep(), nil
	}
	return nil, fmt.Errorf("unknown synthetic workload %q", name)
}

// synthRMWSweep: 6 straight-line sweeps of x[i]++ over the same 40 cache
// lines, emitting a running checksum. The code is loop-free on purpose —
// loop headers are mandatory region boundaries, so a loop commits every
// iteration and its undo entries never matter. A straight-line 40-store
// sweep is one region, and 40 lines thrash the campaign's 4-line
// direct-mapped L1 (and 8-line L2), so every region leaks uncommitted
// increments to NVM through dirty writebacks mid-region. Recovery must roll
// those back before the region re-executes: skipping phase B double-applies
// the increments and both the final memory and the checksum diverge.
func synthRMWSweep() *prog.Program {
	const (
		sweeps = 6
		lines  = 40
	)
	bd := prog.NewBuilder("rmwsweep")
	f := bd.Func("main")
	entry := f.Block()

	const (
		rBase = isa.Reg(8)
		rAddr = isa.Reg(9)
		rV    = isa.Reg(10)
		rSum  = isa.Reg(11)
	)
	f.SetBlock(entry)
	f.MovI(isa.SP, int64(machine.StackBase(0)))
	f.MovI(rBase, int64(machine.HeapBase))
	f.MovI(rSum, 0)
	for s := 0; s < sweeps; s++ {
		for i := 0; i < lines; i++ {
			f.MovI(rAddr, int64(machine.HeapBase)+int64(i)*64)
			f.Load(rV, rAddr, 0)
			f.AddI(rV, rV, 1)
			f.Store(rAddr, 0, rV)
			f.Add(rSum, rSum, rV)
		}
	}
	f.Emit(rSum)
	f.Halt()
	return bd.Program()
}
