package fault

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"capri/internal/machine"
	"capri/internal/recovery"
	"capri/internal/resultstore"
)

// TestPlanRoundTrip: a plan survives the JSON write/read cycle bit-exact.
func TestPlanRoundTrip(t *testing.T) {
	p := Plan{
		Schema:  PlanSchema,
		Target:  Target{Synth: "rmwsweep", Threshold: 64},
		Seed:    12345,
		CrashAt: 678,
		Faults: []Fault{
			{Kind: KindTornWriteback, Pick: 1, Keep: 2},
			{Kind: KindTornDrain, Core: 1, Keep: 3},
			{Kind: KindRecoveryCrash, Step: 7},
			{Kind: KindDrainError, Core: 0, Region: 9, Fails: 2},
		},
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

// TestPlanSchemaRejected: a wrong schema tag fails loading.
func TestPlanSchemaRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	b, _ := json.Marshal(Plan{Schema: "capri/fault-plan/v999", CrashAt: 1})
	if err := writeFileForTest(path, b); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPlan(path); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

// TestGeneratePlanDeterministic: plan generation is a pure function of the
// seed, and every generated fault is well-formed.
func TestGeneratePlanDeterministic(t *testing.T) {
	tgt := Target{ProgenSeed: 99, ProgenShape: 1, Threshold: 64}
	for seed := uint64(1); seed < 50; seed++ {
		a := GeneratePlan(seed, tgt, 10_000, 3, 2)
		b := GeneratePlan(seed, tgt, 10_000, 3, 2)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: generation not deterministic", seed)
		}
		if a.CrashAt < 1 || a.CrashAt >= 10_000 {
			t.Fatalf("seed %d: crash point %d outside the run", seed, a.CrashAt)
		}
		if len(a.Faults) < 1 || len(a.Faults) > 3 {
			t.Fatalf("seed %d: %d faults, want 1..3", seed, len(a.Faults))
		}
		for _, f := range a.Faults {
			switch f.Kind {
			case KindTornWriteback, KindTornDrain, KindRecoveryCrash, KindDrainError:
			default:
				t.Fatalf("seed %d: bad kind %q", seed, f.Kind)
			}
			if f.Kind == KindDrainError && f.Fails >= machine.DefaultRetryMax {
				t.Fatalf("seed %d: drain-error fails %d would exhaust the default retry budget", seed, f.Fails)
			}
		}
	}
}

func writeFileForTest(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}

// TestRunPlanDeterministic: the executor is a pure function of the plan —
// two executions agree on every observable outcome field.
func TestRunPlanDeterministic(t *testing.T) {
	tgt := Target{Synth: "rmwsweep", Threshold: 64}
	p, cfg, err := tgt.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := recovery.RunGolden(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := GeneratePlan(7, tgt, g.Instret, 3, 1)
	a := RunPlan(p, cfg, g, plan)
	b := RunPlan(p, cfg, g, plan)
	if a.Crashed != b.Crashed || a.Recoveries != b.Recoveries ||
		a.NestedCrashes != b.NestedCrashes || a.EventsAudited != b.EventsAudited ||
		(a.Err == nil) != (b.Err == nil) {
		t.Fatalf("executor not deterministic:\n a=%+v\n b=%+v", a, b)
	}
	if a.Err != nil {
		t.Fatalf("clean tree failed plan %s: %v", plan.Summary(), a.Err)
	}
}

// TestCampaignCleanTree: a seeded campaign over the synthetic workload, a
// slice of the progen corpus, and one paper benchmark passes with zero
// failures, zero audit violations, and nonzero injected-fault coverage.
func TestCampaignCleanTree(t *testing.T) {
	targets := append(SynthTargets(64), CorpusTargets(12, 64)...)
	targets = append(targets, Target{Bench: "hotrmw", Threshold: 64})
	res, err := RunCampaign(CampaignConfig{Seed: 1, Trials: 3, MaxFaults: 3, Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		f := res.Failures[0]
		t.Fatalf("clean tree failed: plan %s shrunk to %s: %s",
			f.Plan.Summary(), f.Shrunk.Summary(), f.Err)
	}
	if res.Crashes == 0 || res.Faults == 0 || res.EventsAudited == 0 {
		t.Fatalf("campaign exercised nothing: %+v", res)
	}
	if res.Recoveries < res.Crashes {
		t.Fatalf("crashed %d times but only recovered %d", res.Crashes, res.Recoveries)
	}
}

// mutationCampaign runs a small fixed-seed campaign with one protocol
// mutation armed and asserts it is caught with a minimal reproducer.
func mutationCampaign(t *testing.T, flag *bool) Failure {
	t.Helper()
	*flag = true
	defer func() { *flag = false }()
	targets := append(SynthTargets(64), CorpusTargets(26, 64)...)
	res, err := RunCampaign(CampaignConfig{Seed: 1, Trials: 4, MaxFaults: 3, Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("mutated protocol survived the campaign undetected")
	}
	f := res.Failures[0]
	if len(f.Shrunk.Faults) > 3 {
		t.Fatalf("shrunk plan still has %d faults (> 3): %s", len(f.Shrunk.Faults), f.Shrunk.Summary())
	}
	if len(f.Shrunk.Faults) > len(f.Plan.Faults) {
		t.Fatalf("shrinking grew the plan: %d -> %d faults", len(f.Plan.Faults), len(f.Shrunk.Faults))
	}
	// The minimal plan must still reproduce the failure from its JSON alone.
	outc, err := ReplayPlan(f.Shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if outc.Err == nil {
		t.Fatalf("shrunk plan %s does not reproduce", f.Shrunk.Summary())
	}
	return f
}

// TestMutationSkipUndo: dropping recovery's phase B (uncommitted stores
// never rolled back) is caught by the campaign with a <= 3 fault plan.
func TestMutationSkipUndo(t *testing.T) {
	f := mutationCampaign(t, &machine.Mutations.SkipUndo)
	t.Logf("skip-undo caught: %s (%s)", f.Shrunk.Summary(), f.Err)
}

// TestMutationSkipMarkerCheck: replaying uncommitted tails as if committed
// is caught by the campaign with a <= 3 fault plan.
func TestMutationSkipMarkerCheck(t *testing.T) {
	f := mutationCampaign(t, &machine.Mutations.SkipMarkerCheck)
	t.Logf("skip-marker caught: %s (%s)", f.Shrunk.Summary(), f.Err)
}

// TestMutationDropTornPrefix: tearing whole lines regardless of the
// persisted prefix and the later-write ownership guard is caught by the
// campaign with a <= 3 fault plan.
func TestMutationDropTornPrefix(t *testing.T) {
	f := mutationCampaign(t, &machine.Mutations.DropTornPrefix)
	t.Logf("drop-torn-prefix caught: %s (%s)", f.Shrunk.Summary(), f.Err)
}

// TestShrinkKeepsUnreproducible: a plan that passes is returned unchanged.
func TestShrinkKeepsUnreproducible(t *testing.T) {
	tgt := Target{Synth: "rmwsweep", Threshold: 64}
	p, cfg, err := tgt.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := recovery.RunGolden(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := GeneratePlan(3, tgt, g.Instret, 3, 1)
	shrunk, runs := Shrink(p, cfg, g, plan)
	if !reflect.DeepEqual(shrunk, plan) {
		t.Fatalf("passing plan mutated by shrink: %+v", shrunk)
	}
	if runs != 1 {
		t.Fatalf("shrink spent %d runs on a passing plan, want 1", runs)
	}
}

// TestDrainExhaustionIsExpected: a plan whose drain errors exceed the retry
// budget degrades to a structured stop, which the executor treats as a pass
// (Outcome.Exhausted), never as a campaign failure.
func TestDrainExhaustionIsExpected(t *testing.T) {
	tgt := Target{Synth: "rmwsweep", Threshold: 64}
	p, cfg, err := tgt.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := recovery.RunGolden(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := Plan{
		Schema:  PlanSchema,
		Target:  tgt,
		CrashAt: g.Instret / 2,
		Faults: []Fault{
			{Kind: KindDrainError, Core: 0, Fails: machine.DefaultRetryMax + 4},
		},
	}
	outc := RunPlan(p, cfg, g, plan)
	if outc.Err != nil {
		t.Fatalf("exhaustion reported as failure: %v", outc.Err)
	}
	if !outc.Exhausted {
		t.Fatalf("retry budget not exhausted: %+v", outc)
	}
	if outc.DrainRetries == 0 {
		t.Fatal("no retries recorded")
	}
}

// TestCorpusTargetsSchedule: the corpus target table matches the sweeps'
// seed schedule and shape cycle.
func TestCorpusTargetsSchedule(t *testing.T) {
	ts := CorpusTargets(8, 64)
	if len(ts) != 8 {
		t.Fatalf("got %d targets", len(ts))
	}
	for i, tgt := range ts {
		if want := uint64(i)*0x9e3779b9 + 1; tgt.ProgenSeed != want {
			t.Fatalf("target %d: seed %d, want %d", i, tgt.ProgenSeed, want)
		}
		if tgt.ProgenShape != i%len(CorpusShapes) {
			t.Fatalf("target %d: shape %d", i, tgt.ProgenShape)
		}
	}
}

// TestCampaignParallelAndStoreDeterminism: the same campaign at jobs 1,
// jobs 4, and jobs 4 over a warm store produces identical aggregates, and
// the warm run replays every target from the store.
func TestCampaignParallelAndStoreDeterminism(t *testing.T) {
	targets := append(SynthTargets(64), CorpusTargets(8, 64)...)
	base := CampaignConfig{Seed: 7, Trials: 2, MaxFaults: 3, Targets: targets}

	norm := func(r *CampaignResult) CampaignResult {
		c := *r
		c.StoreHits = 0 // provenance, not outcome
		return c
	}

	seq, err := RunCampaign(base)
	if err != nil {
		t.Fatal(err)
	}

	par := base
	par.Jobs = 4
	pres, err := RunCampaign(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(norm(seq), norm(pres)) {
		t.Fatalf("parallel campaign diverged:\nseq %+v\npar %+v", seq, pres)
	}

	dir := t.TempDir()
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := par
	cold.Store = store
	cres, err := RunCampaign(cold)
	if err != nil {
		t.Fatal(err)
	}
	if cres.StoreHits != 0 {
		t.Fatalf("cold campaign hit the empty store %d times", cres.StoreHits)
	}
	if !reflect.DeepEqual(norm(seq), norm(cres)) {
		t.Fatalf("store-backed campaign diverged:\nseq %+v\ncold %+v", seq, cres)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	warm := par
	warm.Store = store2
	wres, err := RunCampaign(warm)
	if err != nil {
		t.Fatal(err)
	}
	if wres.StoreHits != len(targets) {
		t.Fatalf("warm campaign replayed %d/%d targets", wres.StoreHits, len(targets))
	}
	if !reflect.DeepEqual(norm(seq), norm(wres)) {
		t.Fatalf("warm campaign diverged:\nseq %+v\nwarm %+v", seq, wres)
	}
}
