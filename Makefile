# Capri build/check targets. Everything here uses only the Go toolchain and
# git — no external dependencies.

GO ?= go

# JOBS shards the figure sweeps and fault campaigns across a bounded worker
# pool (sweep orchestrator, DESIGN.md §4h); results are deterministic at any
# value. PERF_STORE is the on-disk content-addressed result store `make
# perf` and the soak campaigns reuse — delete the directory to force a cold
# run, or point it elsewhere per experiment.
JOBS ?= 4
PERF_STORE ?= /tmp/capri-resultstore

.PHONY: all build test check lint audit soak soak-mt soak-long docs-verify bench telemetry-smoke perf perf-single perf-seed clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) build ./... && $(GO) test ./...

# lint is vet plus the godoc-coverage gate: every exported identifier in the
# listed packages must carry a doc comment (tools/doccheck — plain go/ast,
# no external linters).
lint:
	$(GO) vet ./...
	$(GO) run ./tools/doccheck internal/sweep internal/resultstore internal/fault internal/audit internal/figures internal/compile internal/machine internal/telemetry internal/workload internal/recovery cmd/capristat

# check is the pre-merge tier: lint (vet + godoc coverage), the
# race-sensitive packages under the race detector (compile carries the
# shared compile cache, sweep/resultstore the parallel fleet and its store),
# the full verifier matrix (semantic region verifier after every pass for
# every benchmark x level x threshold), the store and dispatch-equivalence
# differential sweeps, the documentation-freshness check — which includes
# the sweep determinism contract: parallel (-jobs) fig8/fig9 tables
# byte-identical to sequential, and a warm-store rerun counter-asserted at
# zero simulations — and a perf-harness smoke run (catches BENCH_sim.json
# pipeline bit-rot without judging the numbers). The telemetry smoke test
# stands up a live OpenMetrics endpoint plus heartbeat stream and scrapes
# it over HTTP; the dispatch-equivalence run includes the telemetry
# observer-equivalence matrix (armed/bus runs byte-identical to disarmed).
check:
	$(MAKE) lint
	$(GO) test -race ./internal/machine ./internal/figures ./internal/compile ./internal/sweep ./internal/resultstore ./internal/fault ./internal/telemetry
	$(GO) test -run 'TestVerifierMatrix|TestMutation' ./internal/compile
	$(GO) test -run 'Differential|DispatchEquivalence' .
	$(MAKE) telemetry-smoke
	$(MAKE) audit
	$(MAKE) soak
	$(MAKE) soak-mt
	$(MAKE) docs-verify
	$(GO) run ./cmd/capribench -perf -scale 1 -perfout /tmp/BENCH_sim.smoke.json

# audit runs the online Fig. 7 invariant auditor over the full crash
# machinery: the 104-program progen crash sweep and the 19-benchmark suite,
# every run observed end-to-end (run -> crash -> recovery replay -> resume).
# Any violated provenance invariant fails with the per-line event chain.
# The mutation tests prove the auditor actually bites (seeded protocol
# corruptions each produce a violation).
audit:
	$(GO) test -run 'TestAuditProgenCrashSweep|TestAuditBenchmarks' .
	$(GO) test -run 'TestMutation' ./internal/audit

# soak is the short fixed-seed hardware-fault campaign (DESIGN.md §4f):
# seeded random fault plans — torn NVM line writes, nested crashes during
# recovery, transient drain write errors — over the synthetic fault
# workloads, a progen corpus slice, and all 19 paper benchmarks, every run
# audited and verified against its golden state. The fault package's
# mutation tests run first: they prove the campaign catches seeded protocol
# bugs with a shrunk minimal plan, so a green sweep means something.
soak:
	$(GO) test ./internal/fault
	$(GO) run ./cmd/capricrash -campaign -seed 1 -trials 4 -corpus 52 -benches -jobs $(JOBS)

# soak-mt is the fixed-seed multi-core contention campaign: the cross-core
# contention workloads (shared fetch-and-add counters, the MPMC persistent
# queue, lock-protected records) at 2- and 4-core geometries, crash points
# landing inside atomic two-phase commits and mid-drain, every run checked
# against the workloads' conservation invariants, the detectability
# contract, and recovery-order commutativity. The contention-specific
# mutation and permutation tests run first — they prove the cross-core
# auditor rules bite (dropped fence ordering, unguarded cross-core drains,
# non-commuting recovery each caught with a shrunk plan) — then the
# campaign itself sweeps all three workload families at both geometries.
soak-mt:
	$(GO) test -run 'TestContention|TestCampaignContention|TestMutationSync|TestMutationDrainNoGuard|TestMutationReplayNoGuard|TestRecoveryOrderCommutes' ./internal/fault
	$(GO) run ./cmd/capricrash -campaign -seed 1 -trials 4 -corpus 0 -cores 2,4 -jobs $(JOBS)

# soak-long is the open-ended variant: more trials over the whole corpus,
# bounded by a wall-clock budget. Override the seed/budget per run, e.g.
#   make soak-long SOAK_SEED=$$RANDOM SOAK_DURATION=30m
SOAK_SEED ?= 1
SOAK_DURATION ?= 10m
soak-long:
	$(GO) run ./cmd/capricrash -campaign -seed $(SOAK_SEED) -trials 8 -corpus 104 -benches -duration $(SOAK_DURATION) -jobs $(JOBS) -store $(PERF_STORE)-soak

# docs-verify re-runs the stall-attribution tables (deterministic simulator,
# fixed workload scale) and byte-compares them against the marked blocks in
# EXPERIMENTS.md, so the documented numbers can never drift from the code.
# The sweepcheck pass additionally proves the §4h determinism contract on
# every run: a parallel (-jobs) sweep produces byte-identical fig8/fig9
# tables to the sequential one, and a warm-store rerun performs zero
# simulations and zero compilations (counter-asserted), with its accounting
# block byte-compared against EXPERIMENTS.md.
# Regenerate with: go run ./cmd/capribench -explain
#             and: go run ./cmd/capribench -sweepcheck -jobs 4
docs-verify:
	$(GO) run ./cmd/capribench -explain -verify EXPERIMENTS.md
	$(GO) run ./cmd/capribench -sweepcheck -jobs $(JOBS) -verify EXPERIMENTS.md

# bench runs the perf-regression micro-benchmarks (raw store and proxy
# throughput plus the end-to-end simulator benchmark).
bench:
	$(GO) test -bench 'Mem|NVM|Proxy|Path' -benchmem -run '^$$' ./internal/mem ./internal/proxy
	$(GO) test -bench 'SimulatorThroughput' -run '^$$' .

# telemetry-smoke proves the live bus end to end: an OpenMetrics endpoint
# on an ephemeral port is scraped over real HTTP while machine and sweep
# work runs, and the JSONL heartbeat stream is parsed back.
telemetry-smoke:
	$(GO) test -run 'TestTelemetrySmoke' ./internal/telemetry

# perf regenerates a fresh multi-sample report (SAMPLES runs of every timed
# sweep; median ± MAD per figure, schema capri/bench-sim/v5) and gates it
# against the committed BENCH_sim.json with capristat's variance-aware
# Mann-Whitney test: a figure fails only when its slowdown is both
# statistically significant (p < 0.05) and at least 1%. Multi-sample runs
# never attach the result store (replayed cells carry no timing signal).
# Reports without samples arrays fall back per figure to the old 10% point
# cliff, which `make perf-single` still applies directly.
SAMPLES ?= 5
perf:
	$(GO) run ./cmd/capribench -perf -scale 1 -jobs $(JOBS) -samples $(SAMPLES) -perfout /tmp/BENCH_sim.new.json
	$(GO) run ./cmd/capristat -gate BENCH_sim.json /tmp/BENCH_sim.new.json

# perf-single is the documented single-sample fallback: one run of each
# sweep, backed by PERF_STORE, judged by the old 10% point-cliff -perfgate.
# Useful for a quick signal when the 5-sample methodology is too slow.
perf-single:
	$(GO) run ./cmd/capribench -perf -scale 1 -jobs $(JOBS) -store $(PERF_STORE) -perfgate BENCH_sim.json

# perf-seed additionally measures the growth seed's binary (built from git)
# on this machine and records the end-to-end speedup in BENCH_sim.json —
# the ISSUE's >= 1.5x Figure-8 target is judged against this number.
SEED_COMMIT ?= 605d3ef
perf-seed:
	rm -rf /tmp/capri-seed-wt
	git worktree add --force /tmp/capri-seed-wt $(SEED_COMMIT)
	cd /tmp/capri-seed-wt && $(GO) build -o /tmp/capribench-seed ./cmd/capribench
	git worktree remove --force /tmp/capri-seed-wt
	$(GO) build -o /tmp/capribench-new ./cmd/capribench
	SEED_WALL=$$( { t0=$$(date +%s%N); /tmp/capribench-seed -fig 8 >/dev/null; t1=$$(date +%s%N); echo $$(( (t1-t0)/1000000 )); } ); \
	/tmp/capribench-new -perf -scale 1 -seedwall $$(awk "BEGIN{print $$SEED_WALL/1000}")

clean:
	rm -f capri.test /tmp/capribench-seed /tmp/capribench-new /tmp/BENCH_sim.smoke.json /tmp/BENCH_sim.new.json
	rm -rf $(PERF_STORE) $(PERF_STORE)-soak
