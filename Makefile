# Capri build/check targets. Everything here uses only the Go toolchain and
# git — no external dependencies.

GO ?= go

.PHONY: all build test check audit soak soak-long docs-verify bench perf perf-seed clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) build ./... && $(GO) test ./...

# check is the pre-merge tier: vet, the race-sensitive packages under the
# race detector (compile carries the shared compile cache), the full
# verifier matrix (semantic region verifier after every pass for every
# benchmark x level x threshold), the store and dispatch-equivalence
# differential sweeps, the
# documentation-freshness check, and a perf-harness smoke run (catches
# BENCH_sim.json pipeline bit-rot without judging the numbers).
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/machine ./internal/figures ./internal/compile
	$(GO) test -run 'TestVerifierMatrix|TestMutation' ./internal/compile
	$(GO) test -run 'Differential|DispatchEquivalence' .
	$(MAKE) audit
	$(MAKE) soak
	$(MAKE) docs-verify
	$(GO) run ./cmd/capribench -perf -scale 1 -perfout /tmp/BENCH_sim.smoke.json

# audit runs the online Fig. 7 invariant auditor over the full crash
# machinery: the 104-program progen crash sweep and the 19-benchmark suite,
# every run observed end-to-end (run -> crash -> recovery replay -> resume).
# Any violated provenance invariant fails with the per-line event chain.
# The mutation tests prove the auditor actually bites (seeded protocol
# corruptions each produce a violation).
audit:
	$(GO) test -run 'TestAuditProgenCrashSweep|TestAuditBenchmarks' .
	$(GO) test -run 'TestMutation' ./internal/audit

# soak is the short fixed-seed hardware-fault campaign (DESIGN.md §4f):
# seeded random fault plans — torn NVM line writes, nested crashes during
# recovery, transient drain write errors — over the synthetic fault
# workloads, a progen corpus slice, and all 19 paper benchmarks, every run
# audited and verified against its golden state. The fault package's
# mutation tests run first: they prove the campaign catches seeded protocol
# bugs with a shrunk minimal plan, so a green sweep means something.
soak:
	$(GO) test ./internal/fault
	$(GO) run ./cmd/capricrash -campaign -seed 1 -trials 4 -corpus 52 -benches

# soak-long is the open-ended variant: more trials over the whole corpus,
# bounded by a wall-clock budget. Override the seed/budget per run, e.g.
#   make soak-long SOAK_SEED=$$RANDOM SOAK_DURATION=30m
SOAK_SEED ?= 1
SOAK_DURATION ?= 10m
soak-long:
	$(GO) run ./cmd/capricrash -campaign -seed $(SOAK_SEED) -trials 8 -corpus 104 -benches -duration $(SOAK_DURATION)

# docs-verify re-runs the stall-attribution tables (deterministic simulator,
# fixed workload scale) and byte-compares them against the marked blocks in
# EXPERIMENTS.md, so the documented numbers can never drift from the code.
# Regenerate with: go run ./cmd/capribench -explain
docs-verify:
	$(GO) run ./cmd/capribench -explain -verify EXPERIMENTS.md

# bench runs the perf-regression micro-benchmarks (raw store and proxy
# throughput plus the end-to-end simulator benchmark).
bench:
	$(GO) test -bench 'Mem|NVM|Proxy|Path' -benchmem -run '^$$' ./internal/mem ./internal/proxy
	$(GO) test -bench 'SimulatorThroughput' -run '^$$' .

# perf regenerates BENCH_sim.json for the current tree, gated against the
# committed report: a >10% inst/s regression on any timed sweep fails the
# target (the fresh report is still written for inspection).
perf:
	$(GO) run ./cmd/capribench -perf -scale 1 -perfgate BENCH_sim.json

# perf-seed additionally measures the growth seed's binary (built from git)
# on this machine and records the end-to-end speedup in BENCH_sim.json —
# the ISSUE's >= 1.5x Figure-8 target is judged against this number.
SEED_COMMIT ?= 605d3ef
perf-seed:
	rm -rf /tmp/capri-seed-wt
	git worktree add --force /tmp/capri-seed-wt $(SEED_COMMIT)
	cd /tmp/capri-seed-wt && $(GO) build -o /tmp/capribench-seed ./cmd/capribench
	git worktree remove --force /tmp/capri-seed-wt
	$(GO) build -o /tmp/capribench-new ./cmd/capribench
	SEED_WALL=$$( { t0=$$(date +%s%N); /tmp/capribench-seed -fig 8 >/dev/null; t1=$$(date +%s%N); echo $$(( (t1-t0)/1000000 )); } ); \
	/tmp/capribench-new -perf -scale 1 -seedwall $$(awk "BEGIN{print $$SEED_WALL/1000}")

clean:
	rm -f capri.test /tmp/capribench-seed /tmp/capribench-new /tmp/BENCH_sim.smoke.json
